// Scenario matrix: named game-days composed from the orthogonal phase
// catalog (src/workload/scenario.h, docs/SCENARIOS.md) — diurnal load,
// flash crowds, POP failures, regional partitions, KV crash campaigns, and
// rolling host upgrades, over app mixes spanning LVC viewers, the durable
// ticker tier, database live queries, and POP-placed delivery.
//
// Each cell runs RunScenario once and emits exactly one JSON row; the
// committed baseline is SCENARIO_PR10.json (full + smoke rows).
//
//   (no args)          run every cell at full scale
//   --smoke            shrunken cells for CI; audits become hard failures
//   --cell NAME        run only the named cell(s); repeatable
//   --out PATH         write the JSON rows to PATH
//   --check PATH       gate against a previous --out / committed baseline:
//                      delivered >= (1 - tolerance) x base,
//                      p99 <= (1 + tolerance) x base, audits must pass
//   --tolerance X      allowed relative regression (default 0.25)
//   --threads/--lp-groups  run the cells on the partitioned kernel (rows
//                      are byte-identical for a fixed LP layout)

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/workload/scenario.h"

namespace bladerunner {
namespace {

ScenarioPhase Diurnal(SimTime at, SimTime duration, double load_scale) {
  ScenarioPhase p;
  p.kind = ScenarioPhaseKind::kDiurnal;
  p.at = at;
  p.duration = duration;
  p.load_scale = load_scale;
  return p;
}

ScenarioPhase FlashCrowd(SimTime at, SimTime duration, int comments_per_sec) {
  ScenarioPhase p;
  p.kind = ScenarioPhaseKind::kFlashCrowd;
  p.at = at;
  p.duration = duration;
  p.comments_per_sec = comments_per_sec;
  return p;
}

ScenarioPhase PopFailure(SimTime at, size_t pop_index = 0) {
  ScenarioPhase p;
  p.kind = ScenarioPhaseKind::kPopFailure;
  p.at = at;
  p.pop_index = pop_index;
  return p;
}

ScenarioPhase RegionalPartition(SimTime at, SimTime duration, RegionId region = 1) {
  ScenarioPhase p;
  p.kind = ScenarioPhaseKind::kRegionalPartition;
  p.at = at;
  p.duration = duration;
  p.region = region;
  return p;
}

ScenarioPhase KvCampaign(SimTime at, SimTime duration, SimTime mtbf, SimTime mean_outage) {
  ScenarioPhase p;
  p.kind = ScenarioPhaseKind::kKvCampaign;
  p.at = at;
  p.duration = duration;
  p.kv_mtbf = mtbf;
  p.kv_mean_outage = mean_outage;
  return p;
}

ScenarioPhase HostUpgrades(SimTime at, SimTime duration, SimTime interval) {
  ScenarioPhase p;
  p.kind = ScenarioPhaseKind::kHostUpgrades;
  p.at = at;
  p.duration = duration;
  p.upgrade_interval = interval;
  return p;
}

// A durable ticker fleet sized so its publish window fits inside `window`.
void TickerFleet(ScenarioAppMix* mix, size_t devices, int channels, int ticks, SimTime gap,
                 bool durable = true) {
  mix->ticker_devices = devices;
  mix->ticker_channels = channels;
  mix->ticker_ticks_per_channel = ticks;
  mix->ticker_gap = gap;
  mix->ticker_durable = durable;
}

struct Cell {
  const char* name;
  const char* what;  // one-line description for the human summary
  std::function<ScenarioSpec(bool smoke)> make;
};

// The matrix. Smoke cells shrink fleets/rates ~10x and shorten windows so
// CI finishes fast; the composition (phase kinds, overlaps) is identical.
std::vector<Cell> BuildMatrix() {
  std::vector<Cell> cells;

  cells.push_back({"diurnal@2k", "baseline: diurnal Fig. 8 load, no failures", [](bool smoke) {
                     ScenarioSpec spec;
                     spec.name = "diurnal@2k";
                     spec.seed = 101;
                     spec.duration = smoke ? Seconds(60) : Minutes(2);
                     spec.mix.daily_users = smoke ? 200 : 2000;
                     spec.phases = {Diurnal(0, spec.duration, 10.0)};
                     return spec;
                   }});

  cells.push_back({"flash_crowd@2k", "hot-video comment flood + typing storm", [](bool smoke) {
                     ScenarioSpec spec;
                     spec.name = "flash_crowd@2k";
                     spec.seed = 102;
                     spec.duration = Seconds(60);
                     spec.mix.viewers = smoke ? 120 : 1200;
                     spec.mix.commenters = smoke ? 60 : 400;
                     spec.phases = {FlashCrowd(Seconds(5), Seconds(20), smoke ? 20 : 40)};
                     return spec;
                   }});

  cells.push_back({"flash_crowd+pop_failure@2k",
                   "POP dies mid-flood; fleet reconnects under load", [](bool smoke) {
                     ScenarioSpec spec;
                     spec.name = "flash_crowd+pop_failure@2k";
                     spec.seed = 103;
                     spec.duration = Seconds(60);
                     spec.mix.viewers = smoke ? 120 : 1200;
                     spec.mix.commenters = smoke ? 60 : 400;
                     spec.phases = {FlashCrowd(Seconds(5), Seconds(30), smoke ? 20 : 40),
                                    PopFailure(Seconds(15))};
                     return spec;
                   }});

  cells.push_back({"reconnect_storm@10k-durable",
                   "catastrophic POP failure under durable ticker load", [](bool smoke) {
                     ScenarioSpec spec;
                     spec.name = "reconnect_storm@10k-durable";
                     spec.seed = 104;
                     spec.duration = Seconds(16);
                     spec.drain = Seconds(30);
                     TickerFleet(&spec.mix, smoke ? 150 : 10000, smoke ? 10 : 100,
                                 smoke ? 30 : 24, smoke ? Millis(300) : Millis(500));
                     spec.phases = {PopFailure(Seconds(4))};
                     return spec;
                   }});

  cells.push_back({"diurnal+kv_campaign@2k-durable",
                   "KV crash campaign under diurnal + durable load", [](bool smoke) {
                     ScenarioSpec spec;
                     spec.name = "diurnal+kv_campaign@2k-durable";
                     spec.seed = 105;
                     spec.duration = smoke ? Seconds(75) : Minutes(2);
                     spec.drain = Seconds(30);
                     spec.mix.daily_users = smoke ? 150 : 1500;
                     TickerFleet(&spec.mix, smoke ? 50 : 400, smoke ? 8 : 20, smoke ? 40 : 120,
                                 Seconds(1) / 2);
                     spec.phases = {Diurnal(0, spec.duration, 10.0),
                                    KvCampaign(0, spec.duration, Seconds(30), Seconds(30))};
                     return spec;
                   }});

  cells.push_back({"diurnal+regional_partition@2k",
                   "a whole region's BRASS + KV drop out, then heal", [](bool smoke) {
                     ScenarioSpec spec;
                     spec.name = "diurnal+regional_partition@2k";
                     spec.seed = 106;
                     spec.duration = smoke ? Seconds(75) : Minutes(2);
                     spec.mix.daily_users = smoke ? 150 : 1500;
                     spec.phases = {Diurnal(0, spec.duration, 10.0),
                                    RegionalPartition(Seconds(30), Seconds(25), /*region=*/1)};
                     return spec;
                   }});

  cells.push_back({"diurnal+host_upgrades@2k-livequery",
                   "rolling BRASS upgrades under diurnal + live queries", [](bool smoke) {
                     ScenarioSpec spec;
                     spec.name = "diurnal+host_upgrades@2k-livequery";
                     spec.seed = 107;
                     spec.duration = smoke ? Seconds(75) : Minutes(2);
                     spec.mix.daily_users = smoke ? 100 : 1000;
                     spec.mix.livequery_viewers = smoke ? 40 : 300;
                     spec.phases = {Diurnal(0, spec.duration, 10.0),
                                    HostUpgrades(Seconds(10), spec.duration - Seconds(15),
                                                 Seconds(30))};
                     return spec;
                   }});

  cells.push_back({"flash_crowd+placed@2k",
                   "the flood again with POP filter+conflate placement", [](bool smoke) {
                     ScenarioSpec spec;
                     spec.name = "flash_crowd+placed@2k";
                     spec.seed = 108;
                     spec.duration = Seconds(60);
                     spec.mix.viewers = smoke ? 120 : 1000;
                     spec.mix.commenters = smoke ? 60 : 300;
                     spec.mix.lvc_placement = BrassPlacement::kPopFilterConflate;
                     spec.phases = {FlashCrowd(Seconds(5), Seconds(20), smoke ? 20 : 40)};
                     return spec;
                   }});

  cells.push_back({"kitchen_sink@2k-durable-livequery",
                   "everything at once: diurnal + flood + POP death + upgrades + KV campaign",
                   [](bool smoke) {
                     ScenarioSpec spec;
                     spec.name = "kitchen_sink@2k-durable-livequery";
                     spec.seed = 109;
                     spec.duration = smoke ? Seconds(90) : Minutes(2);
                     spec.drain = Seconds(30);
                     spec.mix.daily_users = smoke ? 100 : 800;
                     spec.mix.viewers = smoke ? 60 : 500;
                     spec.mix.commenters = smoke ? 40 : 200;
                     spec.mix.livequery_viewers = smoke ? 30 : 200;
                     TickerFleet(&spec.mix, smoke ? 60 : 2000, smoke ? 10 : 50,
                                 smoke ? 40 : 120, Seconds(1) / 2);
                     spec.phases = {Diurnal(0, spec.duration, 8.0),
                                    FlashCrowd(Seconds(20), Seconds(20), smoke ? 15 : 30),
                                    PopFailure(Seconds(50)),
                                    HostUpgrades(Seconds(55), Seconds(30), Seconds(15)),
                                    KvCampaign(0, spec.duration, Seconds(40), Seconds(30))};
                     return spec;
                   }});

  return cells;
}

// ---- --check: line-oriented baseline parsing (bench_micro's pattern) ----

bool ExtractString(const std::string& line, const std::string& key, std::string* out) {
  std::string needle = "\"" + key + "\":\"";
  size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  at += needle.size();
  size_t end = line.find('"', at);
  if (end == std::string::npos) return false;
  *out = line.substr(at, end - at);
  return true;
}

bool ExtractNumber(const std::string& line, const std::string& key, double* out) {
  std::string needle = "\"" + key + "\":";
  size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  *out = std::atof(line.c_str() + at + needle.size());
  return true;
}

struct BaselineRow {
  double delivered = 0;
  double p99_ms = 0;
  bool found = false;
};

BaselineRow FindBaseline(const std::vector<std::string>& lines, const std::string& scenario,
                         const std::string& scale) {
  BaselineRow base;
  for (const std::string& line : lines) {
    std::string s, sc;
    if (!ExtractString(line, "scenario", &s) || !ExtractString(line, "scale", &sc)) continue;
    if (s != scenario || sc != scale) continue;
    base.found = ExtractNumber(line, "delivered", &base.delivered) &&
                 ExtractNumber(line, "delivery_p99_ms", &base.p99_ms);
    return base;
  }
  return base;
}

int Run(const BenchOptions& opts) {
  const bool smoke = opts.smoke;
  std::vector<Cell> matrix = BuildMatrix();

  if (!opts.cells.empty()) {
    std::vector<Cell> selected;
    for (const std::string& name : opts.cells) {
      bool known = false;
      for (const Cell& cell : matrix) {
        if (name == cell.name) {
          selected.push_back(cell);
          known = true;
          break;
        }
      }
      if (!known) {
        std::fprintf(stderr, "unknown cell '%s'; cells are:\n", name.c_str());
        for (const Cell& cell : matrix) std::fprintf(stderr, "  %s\n", cell.name);
        return 2;
      }
    }
    matrix = std::move(selected);
  }

  std::vector<std::string> baseline;
  if (!opts.check_path.empty()) {
    std::FILE* f = std::fopen(opts.check_path.c_str(), "r");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open baseline %s\n", opts.check_path.c_str());
      return 2;
    }
    char buf[2048];
    while (std::fgets(buf, sizeof(buf), f) != nullptr) baseline.emplace_back(buf);
    std::fclose(f);
  }

  PrintHeader(smoke ? "Scenario matrix (smoke)" : "Scenario matrix",
              "composed game-days: load x failures x app mix -> one JSON row each");

  std::vector<ScenarioRow> rows;
  int failures = 0;
  for (const Cell& cell : matrix) {
    ScenarioSpec spec = cell.make(smoke);
    spec.scale = smoke ? "smoke" : "full";
    ScenarioRow row = RunScenario(spec, opts.Parallel());
    rows.push_back(row);

    PrintSection(cell.name);
    PrintRow("  %s", cell.what);
    PrintRow("  fleet %" PRId64 "  delivered %" PRId64 "  p50 %.1fms  p99 %.1fms", row.fleet,
             row.delivered, row.delivery_p50_ms, row.delivery_p99_ms);
    PrintRow("  shed %.4f  conflated %.4f  degraded %.4f  (degrade signals %" PRId64 ")",
             row.shed_fraction, row.conflated_fraction, row.degraded_fraction,
             row.degrade_signals);
    if (row.durable_published > 0) {
      PrintRow("  durable: published %" PRId64 "  lost %" PRId64 "  dup %" PRId64 "  log %s",
               row.durable_published, row.durable_lost, row.durable_duplicates,
               row.durable_log_ok ? "ok" : "MISMATCH");
    }
    PrintRow("  audits: durability %s  livequery %s  subs %" PRId64 "/%" PRId64 " lost",
             row.durability_ok ? "PASS" : "FAIL", row.livequery_ok ? "PASS" : "FAIL",
             row.subs_lost, row.subs_audited);
    PrintRow("  backbone %" PRId64 " bytes  events %" PRIu64, row.backbone_bytes, row.events);

    const bool audits_ok = row.durability_ok && row.livequery_ok && row.durable_log_ok &&
                           row.subs_lost == 0;
    if (!audits_ok) {
      std::fprintf(stderr, "scenario %s: audit FAILED\n", cell.name);
      ++failures;
    }
    if (!baseline.empty()) {
      BaselineRow base = FindBaseline(baseline, row.scenario, row.scale);
      if (!base.found) {
        std::fprintf(stderr, "scenario %s (%s): no baseline row\n", cell.name,
                     row.scale.c_str());
        ++failures;
      } else {
        const double delivered_floor = base.delivered * (1.0 - opts.tolerance);
        const double p99_ceiling = base.p99_ms * (1.0 + opts.tolerance);
        if (static_cast<double>(row.delivered) < delivered_floor) {
          std::fprintf(stderr, "scenario %s: delivered %lld < floor %.0f (base %.0f)\n",
                       cell.name, static_cast<long long>(row.delivered), delivered_floor,
                       base.delivered);
          ++failures;
        }
        if (base.p99_ms > 0 && row.delivery_p99_ms > p99_ceiling) {
          std::fprintf(stderr, "scenario %s: p99 %.1fms > ceiling %.1fms (base %.1fms)\n",
                       cell.name, row.delivery_p99_ms, p99_ceiling, base.p99_ms);
          ++failures;
        }
      }
    }
  }

  PrintSection("rows");
  for (const ScenarioRow& row : rows) std::printf("%s\n", row.ToJson().c_str());

  if (!opts.out_path.empty()) {
    std::FILE* f = std::fopen(opts.out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", opts.out_path.c_str());
      return 2;
    }
    for (const ScenarioRow& row : rows) std::fprintf(f, "%s\n", row.ToJson().c_str());
    std::fclose(f);
    std::printf("\nwrote %zu rows to %s\n", rows.size(), opts.out_path.c_str());
  }

  if (failures > 0) {
    std::fprintf(stderr, "scenario matrix: %d failure(s)\n", failures);
    return 1;
  }
  std::printf("\nscenario matrix: %zu cell(s) OK\n", rows.size());
  return 0;
}

}  // namespace
}  // namespace bladerunner

int main(int argc, char** argv) {
  return bladerunner::Run(bladerunner::ParseBenchOptions(argc, argv));
}
