// Reproduces §2's motivation: the same LiveVideoComments workload run
// against each architecture the paper deployed or experimented with before
// building Bladerunner — client-side polling, server-side polling,
// pub/sub-triggered polling (Thialfi-style) — and Bladerunner itself.
//
//   paper: "polling in the above approaches is generally wasteful at the
//   backend since the majority of polls come up empty"; Messenger on
//   polling "needed eight times the hardware"; triggering eliminates empty
//   polls but still pays range/intersect query costs per hit.

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/baseline/polling.h"
#include "src/core/cluster.h"
#include "src/core/device.h"
#include "src/was/resolvers.h"
#include "src/workload/social_gen.h"

using namespace bladerunner;

namespace {

enum class Arch { kClientPoll, kServerPoll, kTrigger, kBladerunner };

struct Result {
  int64_t backend_queries = 0;  // WAS queries (the poll load)
  int64_t tao_range_reads = 0;  // index pressure
  int64_t tao_shards = 0;
  int64_t was_cpu_us = 0;
  double mean_latency_s = 0.0;
  int64_t items = 0;
};

Result RunArch(Arch arch, uint64_t seed) {
  ClusterConfig config;
  config.seed = seed;
  bench_options().ApplyTo(&config);
  BladerunnerCluster cluster(config, Topology::OneRegion());
  SocialGraphConfig graph_config;
  graph_config.num_users = 80;
  graph_config.num_videos = 1;
  SocialGraph graph = GenerateSocialGraph(cluster.tao(), cluster.sim().rng(), graph_config);
  ObjectId video = graph.videos[0];
  cluster.sim().RunFor(Seconds(2));

  const int kViewers = 25;
  std::vector<std::unique_ptr<DeviceAgent>> devices;
  std::vector<std::unique_ptr<LvcPollingClient>> pollers;
  std::vector<std::unique_ptr<LvcServerPollAgent>> agents;
  std::vector<std::unique_ptr<LvcTriggerClient>> triggers;
  for (int i = 0; i < kViewers; ++i) {
    UserId user = graph.users[static_cast<size_t>(i)];
    switch (arch) {
      case Arch::kClientPoll:
        pollers.push_back(std::make_unique<LvcPollingClient>(&cluster, user, 0,
                                                             DeviceProfile::kWifi, video,
                                                             Seconds(2)));
        pollers.back()->Start();
        break;
      case Arch::kServerPoll:
        agents.push_back(std::make_unique<LvcServerPollAgent>(&cluster, user, 0,
                                                              DeviceProfile::kWifi, video,
                                                              Seconds(2)));
        agents.back()->Start();
        break;
      case Arch::kTrigger:
        triggers.push_back(std::make_unique<LvcTriggerClient>(&cluster, user, 0,
                                                              DeviceProfile::kWifi, video,
                                                              90000 + i));
        triggers.back()->Start();
        break;
      case Arch::kBladerunner:
        devices.push_back(std::make_unique<DeviceAgent>(&cluster, user, 0, DeviceProfile::kWifi));
        devices.back()->SubscribeLvc(video);
        break;
    }
  }
  cluster.sim().RunFor(Seconds(5));
  MetricsRegistry& m = cluster.metrics();
  m.GetCounter("was.queries").Reset();
  m.GetCounter("was.fetches").Reset();
  m.GetCounter("tao.range_reads").Reset();
  m.GetCounter("tao.shards_touched").Reset();
  m.GetCounter("was.cpu_us").Reset();

  std::vector<std::unique_ptr<DeviceAgent>> commenters;
  for (int i = 40; i < 60; ++i) {
    commenters.push_back(std::make_unique<DeviceAgent>(
        &cluster, graph.users[static_cast<size_t>(i)], 0, DeviceProfile::kWifi));
  }
  // Mostly quiet (the Table 1 regime) with one short burst.
  for (int s = 0; s < 150; ++s) {
    if (s >= 70 && s < 78) {
      for (int k = 0; k < 6; ++k) {
        DeviceAgent& c = *commenters[cluster.sim().rng().Index(commenters.size())];
        c.PostComment(video, "c", "en");
      }
    } else if (cluster.sim().rng().Bernoulli(0.05)) {
      DeviceAgent& c = *commenters[cluster.sim().rng().Index(commenters.size())];
      c.PostComment(video, "c", "en");
    }
    cluster.sim().RunFor(Seconds(1));
  }
  cluster.sim().RunFor(Seconds(25));

  Result result;
  // Backend request load: blind/triggered GraphQL polls for the polling
  // architectures; privacy-checked point fetches for Bladerunner.
  result.backend_queries =
      m.GetCounter("was.queries").value() + m.GetCounter("was.fetches").value();
  result.tao_range_reads = m.GetCounter("tao.range_reads").value();
  result.tao_shards = m.GetCounter("tao.shards_touched").value();
  result.was_cpu_us = m.GetCounter("was.cpu_us").value();
  const char* histogram = arch == Arch::kClientPoll    ? "poll.lvc_latency_us"
                          : arch == Arch::kServerPoll  ? "server_poll.lvc_latency_us"
                          : arch == Arch::kTrigger     ? "trigger.lvc_latency_us"
                                                       : "e2e.total_us.LVC";
  const Histogram* h = m.FindHistogram(histogram);
  if (h != nullptr && h->count() > 0) {
    result.mean_latency_s = h->Mean() / 1e6;
    result.items = static_cast<int64_t>(h->count());
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchOptions(argc, argv);
  PrintHeader("Motivation (§2)", "the same LVC workload on each candidate architecture");

  Result client = RunArch(Arch::kClientPoll, 77);
  Result server = RunArch(Arch::kServerPoll, 77);
  Result trigger = RunArch(Arch::kTrigger, 77);
  Result stream = RunArch(Arch::kBladerunner, 77);

  PrintSection("backend load (25 viewers, 150s, quiet-with-a-burst workload)");
  PrintRow("%-22s %-14s %-14s %-12s %-12s %s", "architecture", "WAS requests", "range reads",
           "shards", "WAS CPU ms", "mean latency");
  auto row = [](const char* name, const Result& r) {
    PrintRow("%-22s %-14lld %-14lld %-12lld %-12lld %.1fs (n=%lld)", name,
             static_cast<long long>(r.backend_queries),
             static_cast<long long>(r.tao_range_reads), static_cast<long long>(r.tao_shards),
             static_cast<long long>(r.was_cpu_us / 1000), r.mean_latency_s,
             static_cast<long long>(r.items));
  };
  row("client-side polling", client);
  row("server-side polling", server);
  row("pub/sub triggering", trigger);
  row("Bladerunner", stream);

  PrintSection("paper vs measured");
  Recap("client & server polling waste the backend", "majority of polls empty",
        Fmt("%.0fx / %.0fx more WAS requests than Bladerunner",
            static_cast<double>(client.backend_queries) /
                std::max<int64_t>(1, stream.backend_queries),
            static_cast<double>(server.backend_queries) /
                std::max<int64_t>(1, stream.backend_queries)));
  Recap("polling needs ~8x the hardware (Messenger)", "8x",
        Fmt("%.1fx WAS CPU (client polling vs Bladerunner)",
            static_cast<double>(client.was_cpu_us) / std::max<int64_t>(1, stream.was_cpu_us)));
  Recap("triggering removes empty polls", "poll count collapses",
        Fmt("%lld triggered queries vs %lld blind polls", trigger.backend_queries,
            client.backend_queries));
  Recap("but triggered polls still pay index costs", "range/intersect per hit",
        Fmt("%lld range reads (Bladerunner: %lld)", trigger.tao_range_reads,
            stream.tao_range_reads));
  return 0;
}
