// Mass-reconnect storm for the durable reliable-delivery tier (§4 failure
// handling + the PR 7 durable log): a fleet of devices holds Ticker
// subscriptions through one POP; the POP dies catastrophically and every
// stream reconnects at once, mid-publish. The bench reports pre-storm vs
// post-storm delivery latency, per-device catch-up time, replay/duplicate
// counts, and a zero-loss durability audit against the shared durable log —
// then repeats the identical storm with the durable tier off to show the
// loss the tier exists to prevent.
//
//   (no args)   full run: ~100k dropped streams (20k devices x 5 channels)
//   --smoke     shrunken fleet for CI; exits nonzero if the durable run
//               lost or duplicated any sequence, if post-storm steady-state
//               p99 exceeds 2x pre-storm, or if the best-effort baseline
//               did NOT lose anything (audit harness sanity).

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/burst/durable_log.h"
#include "src/pylon/topic.h"
#include "src/workload/scenario_lib.h"

namespace bladerunner {
namespace {

struct StormShape {
  int num_devices = 20000;
  int num_channels = 200;    // each device subscribes `subs_per_device` of these
  int subs_per_device = 5;   // streams dropped = num_devices * subs_per_device
  int ticks_per_channel = 24;
  SimTime tick_gap = Millis(500);  // per-channel publish spacing
  SimTime warmup = Seconds(5);
  SimTime pre_window = Seconds(4);     // steady-state window before the storm
  SimTime storm_window = Seconds(8);   // publishing continues while streams reconnect
  // "Post-storm steady state" excludes ticks created while the fleet was
  // still mid-reconnect/replay: only publishes after storm + post_grace
  // count toward the post-storm latency bound.
  SimTime post_grace = Seconds(6);
  SimTime drain = Seconds(30);         // quiesce before the audit
};

StormShape SmokeShape() {
  StormShape shape;
  shape.num_devices = 150;
  shape.num_channels = 10;
  shape.subs_per_device = 3;
  shape.ticks_per_channel = 40;
  shape.tick_gap = Millis(300);
  return shape;
}

struct Audit {
  // Per device, per channel: every _seq the payload hook saw (multiset so
  // duplicates are visible even though the client should suppress them).
  TickerSeqsSeen seen;
  Histogram pre_latency;        // publish -> device, ticks created pre-storm
  Histogram post_latency;      // same, for ticks created after the storm hit
  std::map<int, SimTime> caught_up_at;  // device -> catch-up completion time
};

struct Result {
  int64_t streams = 0;
  int64_t published = 0;
  int64_t delivered = 0;
  int64_t lost = 0;
  int64_t duplicates = 0;       // device-visible (post client dedup)
  int64_t replayed = 0;          // brass.durable_replayed
  int64_t client_dedup = 0;      // burst.client_duplicates_dropped
  double pre_p99_ms = 0.0;
  double post_p99_ms = 0.0;
  double catch_up_p50_s = 0.0;
  double catch_up_p99_s = 0.0;
  int64_t reconnects = 0;
  bool log_matches_publishes = true;
};

// One full storm scenario. `durable` toggles the tier; everything else —
// seed, fleet, publish schedule, failure time — is identical.
Result RunStorm(const StormShape& shape, bool durable) {
  ClusterConfig config;
  config.seed = 20210701;
  config.brass_hosts_per_region = 2;
  config.pops_per_region = 1;  // one POP serves the whole fleet's region
  config.apps.ticker.durable = durable;
  bench_options().ApplyTo(&config);
  BladerunnerCluster cluster(config, Topology::ThreeRegions());
  cluster.sim().RunFor(Seconds(1));

  // Fleet: device i subscribes to subs_per_device consecutive channels, so
  // every channel has ~num_devices * subs_per_device / num_channels
  // subscribers and all streams ride POP 0 (region 0's only POP).
  Audit audit;
  std::map<int, std::vector<int64_t>> subs;  // device -> channels
  std::vector<std::unique_ptr<DeviceAgent>> fleet;
  fleet.reserve(static_cast<size_t>(shape.num_devices));
  for (int d = 0; d < shape.num_devices; ++d) {
    fleet.push_back(std::make_unique<DeviceAgent>(&cluster, 1000 + d, 0, DeviceProfile::kWifi));
    for (int s = 0; s < shape.subs_per_device; ++s) {
      int64_t channel = 1 + (d + s * 7) % shape.num_channels;
      fleet.back()->SubscribeTicker(channel);
      subs[d].push_back(channel);
      audit.seen[d][channel];  // materialize the expected stream set
    }
  }

  // Publish bookkeeping shared with the hooks below.
  int64_t hook_deliveries = 0;
  TickerPublishState published;
  SimTime storm_at = 0;  // set when the POP fails
  std::map<int64_t, uint64_t> published_at_storm;  // channel -> count at failure

  for (int d = 0; d < shape.num_devices; ++d) {
    DeviceAgent* device = fleet[static_cast<size_t>(d)].get();
    Simulator* sim = &cluster.sim();
    device->set_payload_hook([&, d, sim](uint64_t, const Value& payload) {
      hook_deliveries += 1;
      const Value& seq = payload.Get("_seq");
      if (!seq.is_int()) {
        return;  // not a durable-tier payload (baseline run): count only
      }
      Topic topic = payload.Get("channel").AsString();
      int64_t channel = std::stoll(SplitTopic(topic)[1]);
      audit.seen[d][channel].insert(static_cast<uint64_t>(seq.AsInt(0)));
      SimTime created = payload.Get("_createdAt").AsInt(0);
      if (storm_at == 0) {
        audit.pre_latency.Record(static_cast<double>(sim->Now() - created));
      } else if (created > storm_at + shape.post_grace) {
        audit.post_latency.Record(static_cast<double>(sim->Now() - created));
      }
      // Catch-up: the first moment this device holds every sequence that
      // existed when the storm hit, across all its channels.
      if (storm_at != 0 && audit.caught_up_at.count(d) == 0) {
        for (int64_t c : subs[d]) {
          const auto& got = audit.seen[d][c];
          uint64_t need = published_at_storm[c];
          if (got.size() < need || (need > 0 && *got.rbegin() < need)) {
            return;
          }
        }
        audit.caught_up_at[d] = sim->Now() - storm_at;
      }
    });
  }
  cluster.sim().RunFor(shape.warmup);

  // The publish schedule: every channel ticks every tick_gap, staggered so
  // publishes spread evenly inside the gap (shared phase library).
  ScheduleTickerTicks(cluster, shape.num_channels, shape.ticks_per_channel, shape.tick_gap,
                      /*start=*/0, &published);

  // Pre-storm steady state, then the POP catastrophically fails: every
  // device connection drops at once and the whole fleet reconnects
  // (cross-region, to the surviving POPs) while ticks keep publishing.
  cluster.sim().RunFor(shape.pre_window);
  int64_t reconnects_before =
      cluster.metrics().GetCounter("burst.device_reconnect_attempts").value();
  storm_at = cluster.sim().Now();
  for (auto& [channel, count] : published.per_channel) {
    published_at_storm[channel] = static_cast<uint64_t>(count);
  }
  cluster.pop(0).FailPop();
  cluster.sim().RunFor(shape.storm_window);
  cluster.sim().RunFor(shape.drain);

  // ---- audit ----
  Result result;
  result.streams = static_cast<int64_t>(shape.num_devices) * shape.subs_per_device;
  result.published = published.total;
  result.reconnects =
      cluster.metrics().GetCounter("burst.device_reconnect_attempts").value() - reconnects_before;
  result.replayed = cluster.metrics().GetCounter("brass.durable_replayed").value();
  result.client_dedup = cluster.metrics().GetCounter("burst.client_duplicates_dropped").value();
  result.delivered = hook_deliveries;
  if (durable) {
    // Exactly-once audit + log-head ground truth via the shared phase
    // library (the same audit composed scenarios report in their rows).
    DurableTickerAudit durable_audit =
        AuditDurableTicker(cluster, shape.num_channels, published.per_channel, audit.seen);
    result.duplicates = durable_audit.duplicates;
    result.lost = durable_audit.lost;
    result.log_matches_publishes = durable_audit.log_matches_publishes;
  } else {
    // No sequence numbers on the wire: loss is the shortfall between
    // expected deliveries (each stream should see its channel's publishes)
    // and what the hooks actually saw.
    int64_t expected_total = 0;
    for (auto& [d, channels] : audit.seen) {
      for (auto& [channel, seqs] : channels) {
        expected_total += published.per_channel[channel];
      }
    }
    result.lost = expected_total - hook_deliveries;
  }
  result.pre_p99_ms = audit.pre_latency.Quantile(0.99) / 1e3;
  result.post_p99_ms = audit.post_latency.Quantile(0.99) / 1e3;
  Histogram catch_up;
  for (auto& [d, at] : audit.caught_up_at) {
    catch_up.Record(static_cast<double>(at));
  }
  result.catch_up_p50_s = catch_up.Quantile(0.50) / 1e6;
  result.catch_up_p99_s = catch_up.Quantile(0.99) / 1e6;
  return result;
}

void PrintResult(const char* label, const StormShape& shape, const Result& r) {
  PrintSection(label);
  PrintRow("  streams dropped by the storm      %" PRId64, r.streams);
  PrintRow("  ticks published                   %" PRId64 "  (%d channels x %d)", r.published,
           shape.num_channels, shape.ticks_per_channel);
  PrintRow("  payloads delivered                %" PRId64, r.delivered);
  PrintRow("  reconnect attempts                %" PRId64, r.reconnects);
  PrintRow("  entries replayed (server)         %" PRId64, r.replayed);
  PrintRow("  duplicates suppressed (client)    %" PRId64, r.client_dedup);
  PrintRow("  duplicates visible to devices     %" PRId64, r.duplicates);
  PrintRow("  sequences LOST                    %" PRId64, r.lost);
  PrintRow("  delivery p99 pre-storm            %.1fms", r.pre_p99_ms);
  PrintRow("  delivery p99 post-storm (new pub) %.1fms", r.post_p99_ms);
  PrintRow("  catch-up time p50/p99             %.2fs / %.2fs", r.catch_up_p50_s,
           r.catch_up_p99_s);
}

int Run(bool smoke) {
  StormShape shape = smoke ? SmokeShape() : StormShape{};
  PrintHeader(smoke ? "Reconnect storm (smoke)" : "Reconnect storm",
              "POP failure drops the fleet; durable tier replays the missed suffix");

  Result durable = RunStorm(shape, /*durable=*/true);
  PrintResult("durable tier ON", shape, durable);
  PrintRow("  log head == publishes             %s",
           durable.log_matches_publishes ? "yes" : "NO (AUDIT FAILED)");

  // The identical storm, best-effort: whatever was published while a device
  // was between POPs is simply gone. (The baseline has no sequence numbers
  // on the wire, so loss is measured as deliveries missing vs publishes
  // times subscribers.)
  Result baseline = RunStorm(shape, /*durable=*/false);
  PrintSection("durable tier OFF (best-effort baseline)");
  PrintRow("  payloads delivered                %" PRId64 "  (durable run delivered %" PRId64 ")",
           baseline.delivered, durable.delivered);
  PrintRow("  sequences LOST                    %" PRId64, baseline.lost);
  PrintRow("  -> the storm window's ticks never reach devices that were mid-reconnect");

  PrintSection("verdict");
  bool zero_loss = durable.lost == 0 && durable.duplicates == 0 && durable.log_matches_publishes;
  bool bounded_catch_up = durable.post_p99_ms <= 2.0 * durable.pre_p99_ms;
  Recap("durability audit (durable on)", "zero loss, zero dup",
        Fmt("%" PRId64 " lost, %" PRId64 " dup -> %s", durable.lost, durable.duplicates,
            zero_loss ? "PASS" : "FAIL"));
  Recap("post-storm steady-state p99", "<= 2x pre-storm",
        Fmt("%.1fms vs 2x %.1fms -> %s", durable.post_p99_ms, durable.pre_p99_ms,
            bounded_catch_up ? "PASS" : "FAIL"));
  Recap("best-effort baseline", "loses the storm window",
        Fmt("%" PRId64 " lost (durable run: %" PRId64 ")", baseline.lost, durable.lost));

  if (smoke) {
    if (!zero_loss || !bounded_catch_up) {
      std::fprintf(stderr, "reconnect-storm smoke: durability/catch-up bound FAILED\n");
      return 1;
    }
    if (baseline.lost <= 0) {
      std::fprintf(stderr, "reconnect-storm smoke: baseline lost nothing; audit broken?\n");
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace bladerunner

int main(int argc, char** argv) {
  bool smoke = bladerunner::ParseBenchOptions(argc, argv).smoke;
  return bladerunner::Run(smoke);
}
