// Reproduces Fig. 6: "Latency distribution for LiveVideoComments" — from
// comment posted to available at the edge, polling vs Bladerunner stream.
//
//   paper: polling has a long tail (mean 4.8s, p75 6s, p95 14s);
//          streaming does not (mean 3.4s, p75 4s, p95 6s).
//
// The same comment workload runs against (a) a polling fleet with
// bandwidth-appropriate intervals per connectivity class, and (b) a
// Bladerunner stream fleet. Polling clients page through backlogs; stream
// clients are rate-limited and buffer at most 10s (§5).

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/baseline/polling.h"
#include "src/core/cluster.h"
#include "src/core/device.h"
#include "src/was/resolvers.h"
#include "src/workload/social_gen.h"

using namespace bladerunner;

namespace {

struct RunResult {
  Histogram latency;
};

RunResult RunWorkload(bool use_polling, uint64_t seed) {
  ClusterConfig config;
  config.seed = seed;
  bench_options().ApplyTo(&config);
  BladerunnerCluster cluster(config);
  SocialGraphConfig graph_config;
  graph_config.num_users = 120;
  graph_config.num_videos = 1;
  SocialGraph graph = GenerateSocialGraph(cluster.tao(), cluster.sim().rng(), graph_config);
  ObjectId video = graph.videos[0];
  cluster.sim().RunFor(Seconds(2));

  const int kViewers = 40;
  std::vector<std::unique_ptr<DeviceAgent>> devices;
  std::vector<std::unique_ptr<LvcPollingClient>> pollers;
  for (int i = 0; i < kViewers; ++i) {
    UserId user = graph.users[static_cast<size_t>(i)];
    RegionId region = cluster.topology().SampleRegion(cluster.sim().rng());
    DeviceProfile profile = cluster.topology().SampleProfile(cluster.sim().rng());
    if (use_polling) {
      // Poll interval regulated by bandwidth class (§1: "bandwidth and
      // battery usage can be managed by regulating the polling frequency").
      SimTime interval = profile == DeviceProfile::kWifi      ? Seconds(2)
                         : profile == DeviceProfile::kMobile4g ? Seconds(4)
                                                               : Seconds(10);
      pollers.push_back(std::make_unique<LvcPollingClient>(&cluster, user, region, profile,
                                                           video, interval));
      pollers.back()->Start();
    } else {
      devices.push_back(std::make_unique<DeviceAgent>(&cluster, user, region, profile));
      devices.back()->SubscribeLvc(video);
    }
  }
  cluster.sim().RunFor(Seconds(6));

  std::vector<std::unique_ptr<DeviceAgent>> commenters;
  for (int i = 60; i < 90; ++i) {
    commenters.push_back(std::make_unique<DeviceAgent>(
        &cluster, graph.users[static_cast<size_t>(i)], 0, DeviceProfile::kWifi));
  }
  auto post = [&](int count) {
    for (int i = 0; i < count; ++i) {
      DeviceAgent& commenter = *commenters[cluster.sim().rng().Index(commenters.size())];
      commenter.PostComment(video, "c", "en");
    }
  };
  // Steady trickle with two bursts (the live-event moments).
  for (int s = 0; s < 150; ++s) {
    if ((s >= 40 && s < 50) || (s >= 100 && s < 112)) {
      post(18);
    } else if (cluster.sim().rng().Bernoulli(0.55)) {
      post(1);
    }
    cluster.sim().RunFor(Seconds(1));
  }
  cluster.sim().RunFor(Seconds(30));

  RunResult result;
  const Histogram* h = cluster.metrics().FindHistogram(use_polling ? "poll.lvc_latency_us"
                                                                   : "e2e.total_us.LVC");
  if (h != nullptr) {
    result.latency.Merge(*h);
  }
  return result;
}

void PrintDistribution(const char* label, const Histogram& h) {
  // The figure's x-axis: share of deliveries landing in each 1s bin.
  std::printf("%-8s", label);
  double prev = 0.0;
  for (int s = 1; s <= 20; ++s) {
    double cdf = h.CdfAt(static_cast<double>(Seconds(s)));
    std::printf(" %4.1f%%", (cdf - prev) * 100.0);
    prev = cdf;
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchOptions(argc, argv);
  PrintHeader("Fig. 6", "LVC comment-to-edge latency: polling vs Bladerunner stream");

  RunResult poll = RunWorkload(/*use_polling=*/true, 606);
  RunResult stream = RunWorkload(/*use_polling=*/false, 606);

  PrintSection("distribution (share of deliveries per 1-second bin, 1..20s)");
  std::printf("%-8s", "bin:");
  for (int s = 1; s <= 20; ++s) {
    std::printf(" %4ds", s);
  }
  std::printf("\n");
  PrintDistribution("poll", poll.latency);
  PrintDistribution("stream", stream.latency);

  PrintSection("summary");
  PrintRow("  poll:   %s", poll.latency.Summary(1e6, "s").c_str());
  PrintRow("  stream: %s", stream.latency.Summary(1e6, "s").c_str());

  PrintSection("paper vs measured");
  Recap("poll mean", "4.8s", Fmt("%.1fs", poll.latency.Mean() / 1e6));
  Recap("stream mean", "3.4s", Fmt("%.1fs", stream.latency.Mean() / 1e6));
  Recap("poll p75", "6s", Fmt("%.1fs", poll.latency.Quantile(0.75) / 1e6));
  Recap("stream p75", "4s", Fmt("%.1fs", stream.latency.Quantile(0.75) / 1e6));
  Recap("poll p95 (the long tail)", "14s", Fmt("%.1fs", poll.latency.Quantile(0.95) / 1e6));
  Recap("stream p95", "6s", Fmt("%.1fs", stream.latency.Quantile(0.95) / 1e6));
  return 0;
}
