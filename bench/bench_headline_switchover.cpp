// Reproduces the paper's headline switchover results (§1, §2, §5):
//
//   * switching LVC from polling to Bladerunner cut the application's
//     WAS CPU load and TAO queries-per-second by ~10x
//   * comment visibility latency improved ~2x
//   * ~80% of poll queries return no new data
//   * BRASSes filter out ~80% of update events (1 - deliveries/decisions)
//   * Messenger on polling needed ~8x the hardware of the push design
//
// The same LVC workload runs against a polling fleet and a Bladerunner
// fleet; backend cost counters and latencies are compared directly.

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/baseline/polling.h"
#include "src/core/cluster.h"
#include "src/core/device.h"
#include "src/was/resolvers.h"
#include "src/workload/social_gen.h"

using namespace bladerunner;

namespace {

struct RunStats {
  int64_t tao_reads = 0;
  int64_t tao_shards = 0;
  int64_t was_cpu_us = 0;
  int64_t polls = 0;
  int64_t empty_polls = 0;
  double mean_latency_s = 0.0;
  double p95_latency_s = 0.0;
  int64_t decisions = 0;
  int64_t deliveries = 0;
};

RunStats RunLvcWorkload(bool use_polling, uint64_t seed) {
  ClusterConfig config;
  config.seed = seed;
  bench_options().ApplyTo(&config);
  BladerunnerCluster cluster(config);
  SocialGraphConfig graph_config;
  graph_config.num_users = 140;
  graph_config.num_videos = 1;
  SocialGraph graph = GenerateSocialGraph(cluster.tao(), cluster.sim().rng(), graph_config);
  ObjectId video = graph.videos[0];
  cluster.sim().RunFor(Seconds(2));

  const int kViewers = 80;
  std::vector<std::unique_ptr<DeviceAgent>> devices;
  std::vector<std::unique_ptr<LvcPollingClient>> pollers;
  for (int i = 0; i < kViewers; ++i) {
    UserId user = graph.users[static_cast<size_t>(i)];
    DeviceProfile profile = cluster.topology().SampleProfile(cluster.sim().rng());
    if (use_polling) {
      SimTime interval = profile == DeviceProfile::kWifi      ? Seconds(2)
                         : profile == DeviceProfile::kMobile4g ? Seconds(4)
                                                               : Seconds(10);
      pollers.push_back(std::make_unique<LvcPollingClient>(&cluster, user, 0, profile, video,
                                                           interval));
      pollers.back()->Start();
    } else {
      devices.push_back(std::make_unique<DeviceAgent>(&cluster, user, 0, profile));
      devices.back()->SubscribeLvc(video);
    }
  }
  cluster.sim().RunFor(Seconds(5));

  // Reset the interesting counters after setup so only steady-state load
  // is compared.
  MetricsRegistry& m = cluster.metrics();
  m.GetCounter("tao.point_reads").Reset();
  m.GetCounter("tao.range_reads").Reset();
  m.GetCounter("tao.intersect_reads").Reset();
  m.GetCounter("tao.shards_touched").Reset();
  m.GetCounter("was.cpu_us").Reset();

  std::vector<std::unique_ptr<DeviceAgent>> commenters;
  for (int i = 100; i < 120; ++i) {
    commenters.push_back(std::make_unique<DeviceAgent>(
        &cluster, graph.users[static_cast<size_t>(i)], 0, DeviceProfile::kWifi));
  }
  // 3 simulated minutes: mostly-quiet with a short burst (the realistic
  // case where ~80% of polls find nothing).
  for (int s = 0; s < 180; ++s) {
    if (s >= 60 && s < 72) {
      for (int k = 0; k < 15; ++k) {
        DeviceAgent& c = *commenters[cluster.sim().rng().Index(commenters.size())];
        c.PostComment(video, "c", "en");
      }
    } else if (cluster.sim().rng().Bernoulli(0.05)) {
      DeviceAgent& c = *commenters[cluster.sim().rng().Index(commenters.size())];
      c.PostComment(video, "c", "en");
    }
    cluster.sim().RunFor(Seconds(1));
  }
  cluster.sim().RunFor(Seconds(30));

  RunStats stats;
  stats.tao_reads = m.GetCounter("tao.point_reads").value() +
                    m.GetCounter("tao.range_reads").value() +
                    m.GetCounter("tao.intersect_reads").value();
  stats.tao_shards = m.GetCounter("tao.shards_touched").value();
  stats.was_cpu_us = m.GetCounter("was.cpu_us").value();
  stats.decisions = m.GetCounter("brass.decisions").value();
  stats.deliveries = m.GetCounter("brass.deliveries").value();
  for (auto& poller : pollers) {
    poller->Stop();
    stats.polls += static_cast<int64_t>(poller->polls());
    stats.empty_polls += static_cast<int64_t>(poller->empty_polls());
  }
  const Histogram* latency = m.FindHistogram(use_polling ? "poll.lvc_latency_us"
                                                         : "e2e.total_us.LVC");
  if (latency != nullptr && latency->count() > 0) {
    stats.mean_latency_s = latency->Mean() / 1e6;
    stats.p95_latency_s = latency->Quantile(0.95) / 1e6;
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchOptions(argc, argv);
  PrintHeader("Headline", "LVC polling -> Bladerunner switchover (§1/§5)");

  RunStats poll = RunLvcWorkload(/*use_polling=*/true, 1111);
  RunStats stream = RunLvcWorkload(/*use_polling=*/false, 1111);

  PrintSection("backend load for the same workload (80 viewers, 3 minutes)");
  PrintRow("%-34s %-14s %s", "", "polling", "bladerunner");
  PrintRow("%-34s %-14lld %lld", "TAO reads", static_cast<long long>(poll.tao_reads),
           static_cast<long long>(stream.tao_reads));
  PrintRow("%-34s %-14lld %lld", "TAO shards touched (IOPS proxy)",
           static_cast<long long>(poll.tao_shards), static_cast<long long>(stream.tao_shards));
  PrintRow("%-34s %-14lld %lld", "WAS CPU (us)", static_cast<long long>(poll.was_cpu_us),
           static_cast<long long>(stream.was_cpu_us));
  PrintRow("%-34s %-13.1fs %.1fs", "mean comment-to-edge latency", poll.mean_latency_s,
           stream.mean_latency_s);
  PrintRow("%-34s %-13.1fs %.1fs", "p95 comment-to-edge latency", poll.p95_latency_s,
           stream.p95_latency_s);

  double read_ratio = static_cast<double>(poll.tao_reads) /
                      std::max<int64_t>(1, stream.tao_reads);
  double shard_ratio = static_cast<double>(poll.tao_shards) /
                       std::max<int64_t>(1, stream.tao_shards);
  double cpu_ratio = static_cast<double>(poll.was_cpu_us) /
                     std::max<int64_t>(1, stream.was_cpu_us);
  double empty_rate = 100.0 * static_cast<double>(poll.empty_polls) /
                      std::max<int64_t>(1, poll.polls);
  double filtered = stream.decisions > 0
                        ? 100.0 * static_cast<double>(stream.decisions - stream.deliveries) /
                              static_cast<double>(stream.decisions)
                        : 0.0;

  PrintSection("paper vs measured");
  Recap("app TAO query reduction", "~10x", Fmt("%.1fx fewer reads", read_ratio));
  Recap("graph-index pressure reduction", "~10x (shard fanout)",
        Fmt("%.1fx fewer shards touched", shard_ratio));
  Recap("WAS CPU reduction for the app", "~10x", Fmt("%.1fx", cpu_ratio));
  Recap("comment visibility improvement (tail)", "~2x",
        Fmt("%.1fx at p95 (%.1fs -> %.1fs)",
            poll.p95_latency_s / std::max(0.01, stream.p95_latency_s), poll.p95_latency_s,
            stream.p95_latency_s));
  Recap("polls returning no new data", "~80%", Fmt("%.0f%%", empty_rate));
  Recap("events filtered out at BRASSes", "~80%", Fmt("%.0f%%", filtered));
  return 0;
}
