// Ablation (DESIGN.md §5.1): event-only publish vs full-payload publish.
//
// Bladerunner pushes only a small update *event* through Pylon; BRASSes
// fetch the payload from a region-local WAS for the updates they actually
// deliver (§1: pushing data again "more than doubles cross region
// bandwidth"). This bench measures the cross-region bytes the fanout moved
// in event mode and computes what the same fanout would have cost had each
// event carried its full payload — against the extra WAS point queries the
// event-only design pays.

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/cluster.h"
#include "src/core/device.h"
#include "src/was/resolvers.h"
#include "src/workload/social_gen.h"

using namespace bladerunner;

int main(int argc, char** argv) {
  ParseBenchOptions(argc, argv);
  PrintHeader("Ablation 1", "event-only publish vs full-payload publish");

  ClusterConfig config;
  config.seed = 21;
  SocialGraphConfig graph_config;
  graph_config.num_users = 90;
  graph_config.num_videos = 1;
  BenchCluster fixture = MakeBenchCluster(config, graph_config);
  BladerunnerCluster& cluster = *fixture.cluster;
  ObjectId video = fixture.graph.videos[0];

  // Viewers spread over all regions (region = -1): fanout must cross regions.
  auto devices = MakeDeviceFleet(
      fixture, 0, 30, [video](DeviceAgent& viewer, size_t) { viewer.SubscribeLvc(video); },
      DeviceProfile::kWifi, /*region=*/-1);
  cluster.sim().RunFor(Seconds(5));

  auto commenters = MakeDeviceFleet(fixture, 50, 20);
  for (int s = 0; s < 90; ++s) {
    if (cluster.sim().rng().Bernoulli(0.8)) {
      DeviceAgent& c = *commenters[cluster.sim().rng().Index(commenters.size())];
      // A realistically sized comment body (the payload Pylon does NOT carry).
      c.PostComment(video, std::string(240, 'x'), "en");
    }
    cluster.sim().RunFor(Seconds(1));
  }
  cluster.sim().RunFor(Seconds(20));

  MetricsRegistry& m = cluster.metrics();
  int64_t event_bytes_xr = m.GetCounter("pylon.fanout_bytes_cross_region").value();
  int64_t sends_xr = m.GetCounter("pylon.fanout_sends_cross_region").value();
  int64_t sends_total = m.GetCounter("pylon.fanout_sends").value();
  int64_t fetches = m.GetCounter("brass.was_fetches").value();
  const Histogram* payload_bytes = m.FindHistogram("was.fetch_payload_bytes");
  double mean_payload = payload_bytes != nullptr && payload_bytes->count() > 0
                            ? payload_bytes->Mean()
                            : 0.0;
  // Payload-mode counterfactual: every cross-region fanout send carries the
  // full payload *on top of* the event envelope it carries either way (topic,
  // version, mutation stamp, trace context).
  double payload_bytes_xr =
      static_cast<double>(event_bytes_xr) + static_cast<double>(sends_xr) * mean_payload;

  PrintSection("measured");
  PrintRow("fanout sends: %lld total, %lld cross-region", static_cast<long long>(sends_total),
           static_cast<long long>(sends_xr));
  PrintRow("event-mode cross-region fanout bytes:    %lld",
           static_cast<long long>(event_bytes_xr));
  PrintRow("payload-mode cross-region fanout bytes:  %.0f (counterfactual, mean payload %.0fB)",
           payload_bytes_xr, mean_payload);
  PrintRow("price of event-only: %lld WAS point fetches (region-local, cache-friendly)",
           static_cast<long long>(fetches));
  PrintRow("deliveries: %lld of %lld events examined — most payloads were never needed",
           static_cast<long long>(m.GetCounter("brass.deliveries").value()),
           static_cast<long long>(m.GetCounter("brass.decisions").value()));

  PrintSection("paper vs measured");
  Recap("cross-region bytes saved by event-only", "> 2x (\"more than doubles\")",
        Fmt("%.1fx", payload_bytes_xr / std::max<double>(1.0, event_bytes_xr)));
  Recap("payload fetched only when delivered", "fetches << events fanned out",
        Fmt("%lld fetches vs %lld sends", static_cast<long long>(fetches),
            static_cast<long long>(sends_total)));
  return 0;
}
