// Reproduces Fig. 7: "Percentage of request-stream subscriptions with 0,
// 1-9, 10-99, and over 100 publications."
//
//   paper: ~75% zero | ~19% 1-9 | ~5.5% 10-99 | ~0.6% 100+  (stable across
//   twelve sample points two hours apart)
//
// Methodology mirrors the paper: run a day of traffic, pick twelve instants
// two hours apart, take the request-streams active at each instant, and
// count the update events that targeted each stream's subscription over
// the stream's *entire lifetime*.

#include <vector>

#include "bench/bench_util.h"
#include "src/core/cluster.h"
#include "src/core/daily.h"
#include "src/workload/social_gen.h"

using namespace bladerunner;

int main(int argc, char** argv) {
  ParseBenchOptions(argc, argv);
  PrintHeader("Fig. 7", "publications per request-stream subscription");

  ClusterConfig cluster_config;
  cluster_config.seed = 707;
  bench_options().ApplyTo(&cluster_config);
  BladerunnerCluster cluster(cluster_config);
  SocialGraphConfig graph_config;
  graph_config.num_users = 110;
  graph_config.num_videos = 400;
  graph_config.num_threads = 70;
  SocialGraph graph = GenerateSocialGraph(cluster.tao(), cluster.sim().rng(), graph_config);
  cluster.sim().RunFor(Seconds(3));

  DailyScenarioConfig daily;
  daily.duration = Hours(24);
  DailyScenario scenario(&cluster, &graph, daily);
  scenario.Run();

  std::vector<StreamRecord> records = scenario.CollectStreamRecords();

  // Twelve sample instants, two hours apart (01:00, 03:00, ..., 23:00).
  PrintSection("per sample instant: share of active subscriptions by lifetime publications");
  PrintRow("%-7s %8s %8s %8s %8s  (active)", "time", "0", "1-9", "10-99", "100+");
  int64_t totals[4] = {0, 0, 0, 0};
  int64_t grand_total = 0;
  for (int hour = 1; hour < 24; hour += 2) {
    SimTime sample = Hours(hour) + Seconds(3);
    int64_t buckets[4] = {0, 0, 0, 0};
    int64_t active = 0;
    for (const StreamRecord& record : records) {
      if (record.started_at <= sample && sample < record.closed_at) {
        size_t b = record.events_targeted == 0     ? 0
                   : record.events_targeted < 10   ? 1
                   : record.events_targeted < 100  ? 2
                                                   : 3;
        buckets[b] += 1;
        ++active;
      }
    }
    if (active == 0) {
      continue;
    }
    for (size_t b = 0; b < 4; ++b) {
      totals[b] += buckets[b];
    }
    grand_total += active;
    PrintRow("%-7s %7.1f%% %7.1f%% %7.1f%% %7.2f%%  (%lld)",
             FormatTimeOfDay(sample).c_str(), 100.0 * buckets[0] / active,
             100.0 * buckets[1] / active, 100.0 * buckets[2] / active,
             100.0 * buckets[3] / active, static_cast<long long>(active));
  }

  PrintSection("paper vs measured (aggregate over the 12 sample points)");
  auto pct = [&](size_t b) {
    return Fmt("%.1f%%", 100.0 * static_cast<double>(totals[b]) /
                             std::max<int64_t>(1, grand_total));
  };
  Recap("subscriptions with 0 publications", "~75%", pct(0));
  Recap("subscriptions with 1-9 publications", "~19%", pct(1));
  Recap("subscriptions with 10-99 publications", "~5.5%", pct(2));
  Recap("subscriptions with 100+ publications", "~0.6%", pct(3));
  return 0;
}
