// Ablation (docs/OVERLOAD.md): end-to-end overload control under a
// hot-topic spike.
//
// One BRASS host serves a handful of LVC viewers of a single live video in
// firehose mode (every comment reaches every stream), plus a typing-
// indicator watcher whose thread has a hot typist. The workload runs four
// phases: a baseline commenting rate, a 10x comment spike (with rapid
// typing toggles riding along), a quiet settle window, and a post-spike
// baseline. Reported: per-stream delivery-queue depth against its bound,
// shed / conflated / degraded fractions, the device-side degrade-to-poll
// fallback activity, and pre- vs post-spike end-to-end delivery latency —
// the recovery claim is that the spike leaves no residue.
//
// `--smoke` runs shortened phases and exits nonzero if the queue bound was
// violated, nothing was shed or conflated, no stream degraded and
// recovered, the fallback poller never fetched a comment, or the
// post-spike p99 exceeds 2x the pre-spike p99 (used by CI).

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/cluster.h"
#include "src/core/device.h"
#include "src/workload/scenario_lib.h"
#include "src/workload/social_gen.h"

using namespace bladerunner;

namespace {

struct SpikeShape {
  int num_viewers = 6;
  int baseline_comments_per_sec = 1;
  int spike_comments_per_sec = 10;  // 10x the baseline
  SimTime pre_phase = Seconds(30);
  SimTime spike_phase = Seconds(30);
  SimTime settle = Seconds(12);
  SimTime post_phase = Seconds(30);
};

struct Result {
  double queue_depth_max = 0.0;
  uint64_t queue_depth_samples = 0;
  int64_t deliveries = 0;
  int64_t conflated = 0;
  int64_t shed = 0;
  int64_t degraded_drops = 0;
  int64_t degrade_signals = 0;
  int64_t recover_signals = 0;
  size_t streams = 0;
  uint64_t device_degrades = 0;
  uint64_t device_resumes = 0;
  uint64_t fallback_polls = 0;
  uint64_t fallback_comments = 0;
  size_t pollers_left = 0;
  Histogram pre_latency;   // end-to-end comment delivery latency, us
  Histogram post_latency;
  size_t queue_bound = 0;
};

enum class Phase { kIdle, kPre, kPost };

Result RunSpike(const SpikeShape& shape, uint64_t seed) {
  ClusterConfig config;
  config.seed = seed;
  config.brass_hosts_per_region = 1;
  config.apps.lvc.placement = BrassPlacement::kDeviceFirehose;  // every comment pushes
  config.apps.typing.backend_check = false;  // typing deltas push synchronously
  config.brass.overload.min_push_gap = Millis(500);
  config.brass.overload.max_pending_per_stream = 4;
  config.brass.overload.degrade_min_sheds = 4;
  config.brass.overload.degrade_shed_fraction = 0.25;
  config.brass.overload.shed_window = Seconds(2);
  config.brass.overload.recover_check_interval = Seconds(2);
  SocialGraphConfig graph_config;
  graph_config.num_users = 60;
  graph_config.num_videos = 1;
  graph_config.num_threads = 4;
  BenchCluster fixture = MakeBenchCluster(config, graph_config, Topology::OneRegion());
  BladerunnerCluster& cluster = *fixture.cluster;
  ObjectId video = fixture.graph.videos[0];
  Rng workload_rng(977);

  Result result;
  result.queue_bound = config.brass.overload.max_pending_per_stream;

  // Device ids share the user-id space (DeviceIdFor), so the typing pair is
  // picked first and those users are kept off the viewer/commenter rosters —
  // two agents for one user would collide on StreamKey{device, sid}.
  ObjectId thread = fixture.graph.threads[0];
  const auto& members = fixture.graph.thread_members[thread];
  const UserId watcher_user = members[0];
  const UserId typist_user = members[1];
  auto taken = [&](size_t index) {
    UserId u = fixture.graph.users[index];
    return u == watcher_user || u == typist_user;
  };

  // Viewers of the one live video; their payload hooks feed the per-phase
  // latency histograms (the cluster-wide histogram mixes all phases).
  Phase phase = Phase::kIdle;
  std::vector<std::unique_ptr<DeviceAgent>> viewers;
  size_t next_viewer = 0;
  for (int i = 0; i < shape.num_viewers; ++i) {
    while (taken(next_viewer)) {
      ++next_viewer;
    }
    auto viewer = std::make_unique<DeviceAgent>(
        &cluster, fixture.graph.users[next_viewer++], 0, DeviceProfile::kWifi);
    viewer->set_fallback_poll_interval(Seconds(1));
    viewer->set_payload_hook([&result, &phase, &cluster](uint64_t, const Value& payload) {
      if (payload.Get("_app").AsString() != "LVC") {
        return;
      }
      SimTime created = payload.Get("_createdAt").AsInt(0);
      if (created <= 0) {
        return;
      }
      double latency = static_cast<double>(cluster.sim().Now() - created);
      if (phase == Phase::kPre) {
        result.pre_latency.Record(latency);
      } else if (phase == Phase::kPost) {
        result.post_latency.Record(latency);
      }
    });
    viewer->SubscribeLvc(video);
    viewers.push_back(std::move(viewer));
  }

  // The typing-indicator side channel: a watcher of a thread whose other
  // member types furiously during the spike (conflation workload).
  auto watcher = std::make_unique<DeviceAgent>(&cluster, watcher_user, 0, DeviceProfile::kWifi);
  auto typist = std::make_unique<DeviceAgent>(&cluster, typist_user, 0, DeviceProfile::kWifi);
  watcher->SubscribeTyping(thread);

  std::vector<std::unique_ptr<DeviceAgent>> commenters;
  for (size_t i = 20; commenters.size() < 30; ++i) {
    if (taken(i)) {
      continue;
    }
    commenters.push_back(std::make_unique<DeviceAgent>(
        &cluster, fixture.graph.users[i], 0, DeviceProfile::kWifi));
  }
  cluster.sim().RunFor(Seconds(5));  // subscriptions settle

  // Phase 1: baseline load, pre-spike latency (shared flash-crowd driver,
  // src/workload/scenario_lib.h).
  phase = Phase::kPre;
  DriveCommentLoad(cluster, commenters, video, shape.baseline_comments_per_sec, shape.pre_phase,
                   workload_rng, "comment");
  cluster.sim().RunFor(Seconds(8));  // drain in-flight pre-phase deliveries
  phase = Phase::kIdle;

  // Phase 2: the 10x spike, with typing toggles riding along on the
  // driver's per-comment hook (same call order as the old inline loop:
  // post, toggle, pacing wait).
  DriveCommentLoad(cluster, commenters, video, shape.spike_comments_per_sec, shape.spike_phase,
                   workload_rng, "spike comment", [&](int i) {
                     typist->SetTyping(thread, (i % shape.spike_comments_per_sec) % 2 == 0);
                   });

  // Phase 3: quiet settle — offered load subsides, streams resume.
  cluster.sim().RunFor(shape.settle);

  // Phase 4: baseline load again, post-spike latency.
  phase = Phase::kPost;
  DriveCommentLoad(cluster, commenters, video, shape.baseline_comments_per_sec, shape.post_phase,
                   workload_rng, "comment");
  cluster.sim().RunFor(Seconds(8));
  phase = Phase::kIdle;

  MetricsRegistry& m = cluster.metrics();
  const Histogram& depth = m.GetHistogram("brass.delivery_queue_depth");
  result.queue_depth_max = depth.max();
  result.queue_depth_samples = depth.count();
  result.deliveries = m.GetCounter("brass.deliveries").value();
  result.conflated = m.GetCounter("brass.conflated").value();
  result.shed = m.GetCounter("brass.shed").value();
  result.degraded_drops = m.GetCounter("brass.degraded_drops").value();
  result.degrade_signals = m.GetCounter("brass.degrade_signals").value();
  result.recover_signals = m.GetCounter("brass.recover_signals").value();
  result.streams = static_cast<size_t>(shape.num_viewers);
  for (const auto& viewer : viewers) {
    result.device_degrades += viewer->degrade_to_poll_signals();
    result.device_resumes += viewer->resume_stream_signals();
    result.fallback_polls += viewer->fallback_polls();
    result.fallback_comments += viewer->fallback_comments();
    result.pollers_left += viewer->active_fallback_pollers();
  }
  return result;
}

int Report(const Result& r, bool enforce) {
  const int64_t attempts = r.deliveries + r.conflated + r.shed + r.degraded_drops;
  PrintSection("overload response at the BRASS host");
  PrintRow("%-40s %.0f (bound %zu, %llu samples)", "delivery queue depth max",
           r.queue_depth_max, r.queue_bound,
           static_cast<unsigned long long>(r.queue_depth_samples));
  PrintRow("%-40s %lld", "delivery attempts", static_cast<long long>(attempts));
  PrintRow("%-40s %-8lld (%.1f%% of attempts)", "delivered",
           static_cast<long long>(r.deliveries),
           100.0 * static_cast<double>(r.deliveries) / std::max<int64_t>(1, attempts));
  PrintRow("%-40s %-8lld (%.1f%% of attempts)", "conflated (newest version wins)",
           static_cast<long long>(r.conflated),
           100.0 * static_cast<double>(r.conflated) / std::max<int64_t>(1, attempts));
  PrintRow("%-40s %-8lld (%.1f%% of attempts)", "shed from full queues",
           static_cast<long long>(r.shed),
           100.0 * static_cast<double>(r.shed) / std::max<int64_t>(1, attempts));
  PrintRow("%-40s %-8lld (%.1f%% of attempts)", "dropped while degraded",
           static_cast<long long>(r.degraded_drops),
           100.0 * static_cast<double>(r.degraded_drops) / std::max<int64_t>(1, attempts));
  PrintRow("%-40s %lld of %zu streams (%lld resumed)", "degraded to poll",
           static_cast<long long>(r.degrade_signals), r.streams,
           static_cast<long long>(r.recover_signals));

  PrintSection("device-side fallback");
  PrintRow("%-40s %llu signals, %llu resumes", "degrade-to-poll / resume-stream",
           static_cast<unsigned long long>(r.device_degrades),
           static_cast<unsigned long long>(r.device_resumes));
  PrintRow("%-40s %llu polls, %llu comments", "polling-baseline fallback",
           static_cast<unsigned long long>(r.fallback_polls),
           static_cast<unsigned long long>(r.fallback_comments));
  PrintRow("%-40s %zu", "pollers still active at end", r.pollers_left);

  const double pre_p99 = r.pre_latency.Quantile(0.99);
  const double post_p99 = r.post_latency.Quantile(0.99);
  PrintSection("pre- vs post-spike delivery latency (baseline load)");
  PrintCdfSeconds("pre-spike e2e", r.pre_latency);
  PrintCdfSeconds("post-spike e2e", r.post_latency);

  PrintSection("paper vs measured");
  Recap("queue depth under the spike", "bounded per stream",
        Fmt("max %.0f vs bound %zu", r.queue_depth_max, r.queue_bound));
  Recap("conflation under heat", "hot objects coalesce newest-version-wins",
        Fmt("%lld conflated, %lld shed", static_cast<long long>(r.conflated),
            static_cast<long long>(r.shed)));
  Recap("overloaded streams degrade to polling", "devices fall back, then return",
        Fmt("%llu degraded, %llu resumed, %llu poll comments",
            static_cast<unsigned long long>(r.device_degrades),
            static_cast<unsigned long long>(r.device_resumes),
            static_cast<unsigned long long>(r.fallback_comments)));
  Recap("post-spike latency recovery", "spike leaves no residue",
        Fmt("p99 %.2fs pre vs %.2fs post", pre_p99 / 1e6, post_p99 / 1e6));

  if (!enforce) {
    return 0;
  }
  int failures = 0;
  if (r.queue_depth_max > static_cast<double>(r.queue_bound)) {
    PrintRow("FAIL: queue depth %.0f exceeded the bound %zu", r.queue_depth_max, r.queue_bound);
    ++failures;
  }
  if (r.shed <= 0) {
    PrintRow("FAIL: the spike shed nothing");
    ++failures;
  }
  if (r.conflated <= 0) {
    PrintRow("FAIL: nothing conflated");
    ++failures;
  }
  if (r.degrade_signals < 1 || r.device_degrades < 1) {
    PrintRow("FAIL: no stream degraded to poll");
    ++failures;
  }
  if (r.recover_signals < 1 || r.device_resumes < 1 || r.pollers_left != 0) {
    PrintRow("FAIL: degraded streams did not resume");
    ++failures;
  }
  if (r.fallback_polls == 0 || r.fallback_comments == 0) {
    PrintRow("FAIL: the polling fallback fetched nothing");
    ++failures;
  }
  if (r.post_latency.count() == 0 ||
      post_p99 > 2.0 * pre_p99) {
    PrintRow("FAIL: post-spike p99 %.2fs vs pre-spike %.2fs (limit 2x)", post_p99 / 1e6,
             pre_p99 / 1e6);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = ParseBenchOptions(argc, argv).smoke;

  SpikeShape shape;
  if (smoke) {
    PrintHeader("Ablation 6 (smoke)", "overload control under a shortened hot-topic spike");
    shape.pre_phase = Seconds(20);
    shape.spike_phase = Seconds(15);
    shape.settle = Seconds(10);
    shape.post_phase = Seconds(20);
  } else {
    PrintHeader("Ablation 6",
                "admission, conflation, and degrade-to-poll under a 10x hot-topic spike");
  }
  PrintRow("phases: %ds baseline -> %ds spike at %dx -> %ds settle -> %ds baseline",
           static_cast<int>(shape.pre_phase / Seconds(1)),
           static_cast<int>(shape.spike_phase / Seconds(1)),
           shape.spike_comments_per_sec / shape.baseline_comments_per_sec,
           static_cast<int>(shape.settle / Seconds(1)),
           static_cast<int>(shape.post_phase / Seconds(1)));

  Result result = RunSpike(shape, 51);
  return Report(result, /*enforce=*/true);
}
