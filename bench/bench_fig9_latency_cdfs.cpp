// Reproduces Fig. 9: cumulative distributions of update latencies for
// TypingIndicator and LiveVideoComments, broken into the paper's spans:
//
//   (i)   publish: edge -> Web Application Server
//   (ii)  BRASS host processing (incl. Pylon + backend calls + batching)
//   (iii) BRASS to device
//   (iv)  total publish time
//
//   paper (shape): TI is fast and tight; LVC is slower at every leg
//   (ranking at the WAS, rate limiting at the BRASS, video-competing edge
//   bandwidth) with multi-second totals; everything is heavy-tailed.

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/cluster.h"
#include "src/core/device.h"
#include "src/trace/analysis.h"
#include "src/was/resolvers.h"
#include "src/workload/social_gen.h"

using namespace bladerunner;

int main(int argc, char** argv) {
  ParseBenchOptions(argc, argv);
  PrintHeader("Fig. 9", "update latency CDFs: TypingIndicator vs LiveVideoComments");

  ClusterConfig config;
  config.seed = 909;
  bench_options().ApplyTo(&config);
  BladerunnerCluster cluster(config);
  SocialGraphConfig graph_config;
  graph_config.num_users = 160;
  graph_config.num_videos = 1;
  graph_config.num_threads = 40;
  SocialGraph graph = GenerateSocialGraph(cluster.tao(), cluster.sim().rng(), graph_config);
  ObjectId video = graph.videos[0];
  cluster.sim().RunFor(Seconds(2));

  // Clients located around the world (paper: "clients located around the
  // world"), on the full mix of connectivity profiles.
  std::vector<std::unique_ptr<DeviceAgent>> devices;
  auto make_device = [&](UserId user) -> DeviceAgent* {
    RegionId region = cluster.topology().SampleRegion(cluster.sim().rng());
    DeviceProfile profile = cluster.topology().SampleProfile(cluster.sim().rng());
    devices.push_back(std::make_unique<DeviceAgent>(&cluster, user, region, profile));
    return devices.back().get();
  };

  for (int i = 0; i < 25; ++i) {
    make_device(graph.users[static_cast<size_t>(i)])->SubscribeLvc(video);
  }
  std::vector<std::pair<DeviceAgent*, ObjectId>> typists;
  for (int t = 0; t < 30; ++t) {
    ObjectId thread = graph.threads[static_cast<size_t>(t)];
    const auto& members = graph.thread_members[thread];
    make_device(members[0])->SubscribeTyping(thread);
    typists.emplace_back(make_device(members[1]), thread);
  }
  std::vector<DeviceAgent*> commenters;
  for (int i = 100; i < 130; ++i) {
    commenters.push_back(make_device(graph.users[static_cast<size_t>(i)]));
  }
  cluster.sim().RunFor(Seconds(6));

  // Drive both applications for a few simulated minutes.
  for (int s = 0; s < 240; ++s) {
    if (cluster.sim().rng().Bernoulli(0.7)) {
      DeviceAgent* commenter = commenters[cluster.sim().rng().Index(commenters.size())];
      commenter->PostComment(video, "c", graph.language[commenter->user()]);
    }
    if (cluster.sim().rng().Bernoulli(0.8)) {
      auto& [typist, thread] = typists[cluster.sim().rng().Index(typists.size())];
      typist->SetTyping(thread, s % 2 == 0);
    }
    cluster.sim().RunFor(Seconds(1));
  }
  cluster.sim().RunFor(Seconds(30));

  MetricsRegistry& m = cluster.metrics();
  auto get = [&m](const std::string& name) -> const Histogram& {
    static Histogram empty;
    const Histogram* h = m.FindHistogram(name);
    return h != nullptr ? *h : empty;
  };

  // Per-leg latencies come from trace spans: "was.publish" durations split
  // by the ranked annotation (leg i) and per-app "brass.process" durations
  // (leg ii). Legs iii/iv remain device-side payload-stamp histograms —
  // those measure edge delivery, which ends outside any traced server.
  const TraceCollector& trace = cluster.trace();
  auto publish_leg = [&trace](bool ranked) {
    SpanQuery query;
    query.name = "was.publish";
    query.annotation_key = "ranked";
    query.annotation_value = Value(ranked);
    return SpanDurationHistogram(trace, query);
  };
  auto processing_leg = [&trace](const std::string& app) {
    SpanQuery query;
    query.name = "brass.process";
    query.annotation_key = "app";
    query.annotation_value = Value(app);
    return SpanDurationHistogram(trace, query);
  };
  Histogram publish_ti = publish_leg(false);
  Histogram publish_lvc = publish_leg(true);
  Histogram processing_ti = processing_leg("TI");
  Histogram processing_lvc = processing_leg("LVC");

  PrintSection("publish: edge -> WAS (ms)");
  PrintCdfMillis("TypingIndicator", publish_ti);
  PrintCdfMillis("LiveVideoComments", publish_lvc);

  PrintSection("BRASS host processing (ms, log-scale in the paper)");
  PrintCdfMillis("TypingIndicator", processing_ti);
  PrintCdfMillis("LiveVideoComments", processing_lvc);

  PrintSection("BRASS to device (ms)");
  PrintCdfMillis("TypingIndicator", get("e2e.brass_to_device_us.TI"));
  PrintCdfMillis("LiveVideoComments", get("e2e.brass_to_device_us.LVC"));

  PrintSection("total publish time (s)");
  PrintCdfSeconds("TypingIndicator", get("e2e.total_us.TI"));
  PrintCdfSeconds("LiveVideoComments", get("e2e.total_us.LVC"));

  PrintSection("paper vs measured (shape checks)");
  Recap("TI total p50 vs LVC total p50", "TI ~0.5-1s << LVC ~3-5s",
        Fmt("TI %.2fs vs LVC %.2fs", get("e2e.total_us.TI").Quantile(0.5) / 1e6,
            get("e2e.total_us.LVC").Quantile(0.5) / 1e6));
  Recap("edge->WAS: TI ~x10 faster than LVC", "240ms vs 2000ms",
        Fmt("%.0fms vs %.0fms", publish_ti.Mean() / 1e3, publish_lvc.Mean() / 1e3));
  Recap("BRASS->device heavy tail (p99/p50)", ">5x",
        Fmt("TI %.1fx", get("e2e.brass_to_device_us.TI").Quantile(0.99) /
                            std::max(1.0, get("e2e.brass_to_device_us.TI").Quantile(0.5))));
  return 0;
}
