// Reproduces Fig. 10: failure handling over a day.
//
//   top:    last-mile connections unintentionally dropped per minute
//           (diurnal, 18-33M/min in production — per-online-device: one
//           drop every ~10-60 minutes depending on connectivity class)
//   bottom: stream reconnections per minute initiated by proxies — the
//           overwhelming majority caused by BRASS software upgrades and
//           load rebalancing, not outright failures
//   plus:   Pylon quorum-loss events are rare (33 in the paper's week)
//
// The scenario runs a day with last-mile churn on, a rolling BRASS upgrade
// process (drain + revive), and two brief KV-node outages.

#include <algorithm>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/cluster.h"
#include "src/core/daily.h"
#include "src/workload/social_gen.h"

using namespace bladerunner;

int main() {
  PrintHeader("Fig. 10", "connection drops and proxy-induced stream reconnects");

  ClusterConfig cluster_config;
  cluster_config.seed = 1010;
  cluster_config.brass_hosts_per_region = 4;  // headroom for rolling drains
  BladerunnerCluster cluster(cluster_config);
  SocialGraphConfig graph_config;
  graph_config.num_users = 110;
  graph_config.num_videos = 140;
  graph_config.num_threads = 70;
  SocialGraph graph = GenerateSocialGraph(cluster.tao(), cluster.sim().rng(), graph_config);
  cluster.sim().RunFor(Seconds(3));

  // Two short subscriber-KV outages during the day: with one replica down,
  // quorum still holds; the second outage overlaps two replicas in some
  // placements and produces a handful of quorum losses (the paper saw 33
  // quorum-breakage events in a week).
  cluster.sim().Schedule(Hours(7), [&cluster]() {
    cluster.pylon()->KvNodeAt(0)->SetAvailable(false);
    cluster.pylon()->KvNodeAt(1)->SetAvailable(false);
  });
  cluster.sim().Schedule(Hours(7) + Minutes(6), [&cluster]() {
    cluster.pylon()->KvNodeAt(0)->SetAvailable(true);
    cluster.pylon()->KvNodeAt(1)->SetAvailable(true);
  });
  cluster.sim().Schedule(Hours(18), [&cluster]() {
    cluster.pylon()->KvNodeAt(2)->SetAvailable(false);
    cluster.pylon()->KvNodeAt(3)->SetAvailable(false);
  });
  cluster.sim().Schedule(Hours(18) + Minutes(5), [&cluster]() {
    cluster.pylon()->KvNodeAt(2)->SetAvailable(true);
    cluster.pylon()->KvNodeAt(3)->SetAvailable(true);
  });

  DailyScenarioConfig daily;
  daily.duration = Hours(24);
  daily.connectivity_churn = true;
  daily.host_upgrade_interval = Minutes(60);  // rolling BRASS upgrades
  DailyScenario scenario(&cluster, &graph, daily);
  scenario.Run();

  const double users = static_cast<double>(scenario.num_users());
  const TimeSeries& drops = scenario.Series("daily.drops");
  const TimeSeries& reconnects = scenario.Series("daily.proxy_reconnects");

  PrintSection("per 15-minute bucket (every 2 hours shown; rates per 1000 users)");
  PrintRow("%-7s %-22s %s", "time", "drops/min/1k-users", "proxy-reconnects/min/1k-users");
  double drops_total = 0.0;
  double reconnects_total = 0.0;
  size_t buckets = drops.BucketCount();
  for (size_t b = 0; b + 1 < buckets; ++b) {
    drops_total += drops.Sum(b);
    reconnects_total += reconnects.Sum(b);
    if (b % 8 == 0) {
      PrintRow("%-7s %-22.2f %.2f", FormatTimeOfDay(drops.BucketStart(b)).c_str(),
               drops.RatePerMinute(b) / users * 1000.0,
               reconnects.RatePerMinute(b) / users * 1000.0);
    }
  }

  int64_t quorum_failures = cluster.metrics().GetCounter("pylon.quorum_failures").value();
  int64_t host_drains = cluster.metrics().GetCounter("brass.host_drains").value();

  PrintSection("paper vs measured");
  // The paper's absolute magnitudes are fleet-scale (18-33M drops/min over
  // ~1.5-2B devices ~= 9-22 drops/min per 1000 online-or-not users); we
  // compare the normalized rate and the *shape*: diurnal drops; reconnect
  // bursts tied to upgrades; drops >> proxy reconnects.
  Recap("drops/min per 1k users", "~9 - 22 (fleet-normalized)",
        Fmt("%.1f avg", drops_total / (24.0 * 60.0) / users * 1000.0));
  Recap("proxy reconnects driven by upgrades", "majority of reconnect events",
        Fmt("%lld reconnects across %lld drains", static_cast<long long>(reconnects_total),
            static_cast<long long>(host_drains)));
  // NOTE: the paper's 15x drops-vs-reconnects gap reflects its fleet shape
  // (~10^9 devices per ~10^3 BRASS hosts, so one drained host touches a
  // tiny share of streams); at simulation scale one drain touches a much
  // larger share, so this ratio is not scale-invariant — we report both
  // series and check that drops dominate.
  Recap("drops dominate proxy reconnects", ">1x (15x at fleet scale)",
        Fmt("%.1fx", drops_total / std::max(1.0, reconnects_total)));
  Recap("Pylon quorum-loss incidents", "rare (33 events/week)",
        Fmt("2 injected outages; %lld failed subscribe ops signalled to clients",
            static_cast<long long>(quorum_failures)));
  return 0;
}
