// Reproduces Fig. 10: failure handling over a day.
//
//   top:    last-mile connections unintentionally dropped per minute
//           (diurnal, 18-33M/min in production — per-online-device: one
//           drop every ~10-60 minutes depending on connectivity class)
//   bottom: stream reconnections per minute initiated by proxies — the
//           overwhelming majority caused by BRASS software upgrades and
//           load rebalancing, not outright failures
//   plus:   Pylon quorum-loss events are rare (33 in the paper's week)
//
// The scenario runs a day with last-mile churn on, a rolling BRASS upgrade
// process (drain + revive), and a seeded KV crash/recovery campaign
// (KvFailureInjector): nodes crash, may lose their table, and re-converge
// via anti-entropy. The subscriber KV is sized to the paper's replica set
// (one node per region, replication 3), so a correlated two-node incident
// breaks the write quorum for its duration — the rare Fig. 10 event — while
// single-node crashes are healed by replica re-ranking. The run ends with a
// durability audit: every subscription a live BRASS host believes it holds
// must be present on at least one current KV replica.

#include <algorithm>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/cluster.h"
#include "src/core/daily.h"
#include "src/pylon/failure_injector.h"
#include "src/workload/scenario_lib.h"
#include "src/workload/social_gen.h"

using namespace bladerunner;

int main(int argc, char** argv) {
  ParseBenchOptions(argc, argv);
  PrintHeader("Fig. 10", "connection drops, proxy-induced reconnects, KV crash campaign");

  ClusterConfig cluster_config;
  cluster_config.seed = 1010;
  cluster_config.brass_hosts_per_region = 4;  // headroom for rolling drains
  // One subscriber-KV node per region: the replica set IS the cluster, as
  // in the paper's 3-replica placement, so losing two nodes at once is a
  // real quorum loss rather than being healed away by spare capacity.
  cluster_config.pylon.kv_nodes_per_region = 1;
  bench_options().ApplyTo(&cluster_config);
  BladerunnerCluster cluster(cluster_config);
  SocialGraphConfig graph_config;
  graph_config.num_users = 110;
  graph_config.num_videos = 140;
  graph_config.num_threads = 70;
  SocialGraph graph = GenerateSocialGraph(cluster.tao(), cluster.sim().rng(), graph_config);
  cluster.sim().RunFor(Seconds(3));

  // The shared Fig. 10 campaign shape (src/workload/scenario_lib.h): 3h
  // MTBF, 8m mean outages over a 23h horizon.
  KvFailureInjector injector(cluster.pylon(),
                             MakeKvCampaignConfig(1010, Hours(23), Hours(3), Minutes(8)));
  injector.Start();

  DailyScenarioConfig daily;
  daily.duration = Hours(24);
  daily.connectivity_churn = true;
  daily.host_upgrade_interval = Minutes(60);  // rolling BRASS upgrades
  DailyScenario scenario(&cluster, &graph, daily);
  scenario.Run();
  // Short settle only: sessions still open at midnight keep their streams
  // (a longer drain would close them all and leave nothing to audit), and
  // the campaign horizon (23h) means recoveries have already finished.
  cluster.sim().RunFor(Seconds(30));

  const double users = static_cast<double>(scenario.num_users());
  const TimeSeries& drops = scenario.Series("daily.drops");
  const TimeSeries& reconnects = scenario.Series("daily.proxy_reconnects");

  PrintSection("per 15-minute bucket (every 2 hours shown; rates per 1000 users)");
  PrintRow("%-7s %-22s %s", "time", "drops/min/1k-users", "proxy-reconnects/min/1k-users");
  double drops_total = 0.0;
  double reconnects_total = 0.0;
  size_t buckets = drops.BucketCount();
  for (size_t b = 0; b + 1 < buckets; ++b) {
    drops_total += drops.Sum(b);
    reconnects_total += reconnects.Sum(b);
    if (b % 8 == 0) {
      PrintRow("%-7s %-22.2f %.2f", FormatTimeOfDay(drops.BucketStart(b)).c_str(),
               drops.RatePerMinute(b) / users * 1000.0,
               reconnects.RatePerMinute(b) / users * 1000.0);
    }
  }

  // The injected campaign, as actually executed (precomputed from the seed).
  KvCampaignStats campaign = SummarizeKvCampaign(injector);
  size_t correlated = campaign.correlated;

  PrintSection("KV crash/recovery campaign");
  PrintRow("%-44s %zu (%zu with state loss, %zu correlated 2-node incidents)",
           "node crashes injected", campaign.crashes, campaign.state_losses, correlated);
  PrintRow("%-44s %lld", "anti-entropy recovery passes",
           static_cast<long long>(
               cluster.metrics().GetCounter("pylon.kv_anti_entropy_runs").value()));
  PrintRow("%-44s %lld", "subscriber entries re-merged on recovery",
           static_cast<long long>(
               cluster.metrics().GetCounter("pylon.kv_anti_entropy_entries_merged").value()));
  PrintRow("%-44s %lld", "subscribe ops failed closed (quorum loss)",
           static_cast<long long>(
               cluster.metrics().GetCounter("pylon.quorum_failures").value()));
  PrintRow("%-44s %lld", "KV reads failed during crash windows",
           static_cast<long long>(
               cluster.metrics().GetCounter("pylon.kv_read_failures").value()));

  // Durability audit: a subscription a live host believes it holds but no
  // current replica stores is permanently lost — publishes can never reach
  // that host again. With anti-entropy on, this must be zero. (Shared with
  // the scenario matrix's per-row audit.)
  SubscriptionAudit sub_audit = AuditSubscriptionDurability(cluster);
  size_t audited = sub_audit.audited;
  size_t lost = sub_audit.lost;

  int64_t quorum_failures = cluster.metrics().GetCounter("pylon.quorum_failures").value();
  int64_t host_drains = cluster.metrics().GetCounter("brass.host_drains").value();

  PrintSection("paper vs measured");
  // The paper's absolute magnitudes are fleet-scale (18-33M drops/min over
  // ~1.5-2B devices ~= 9-22 drops/min per 1000 online-or-not users); we
  // compare the normalized rate and the *shape*: diurnal drops; reconnect
  // bursts tied to upgrades; drops >> proxy reconnects.
  Recap("drops/min per 1k users", "~9 - 22 (fleet-normalized)",
        Fmt("%.1f avg", drops_total / (24.0 * 60.0) / users * 1000.0));
  Recap("proxy reconnects driven by upgrades", "majority of reconnect events",
        Fmt("%lld reconnects across %lld drains", static_cast<long long>(reconnects_total),
            static_cast<long long>(host_drains)));
  // NOTE: the paper's 15x drops-vs-reconnects gap reflects its fleet shape
  // (~10^9 devices per ~10^3 BRASS hosts, so one drained host touches a
  // tiny share of streams); at simulation scale one drain touches a much
  // larger share, so this ratio is not scale-invariant — we report both
  // series and check that drops dominate.
  Recap("drops dominate proxy reconnects", ">1x (15x at fleet scale)",
        Fmt("%.1fx", drops_total / std::max(1.0, reconnects_total)));
  Recap("Pylon quorum-loss incidents", "rare (33 events/week)",
        Fmt("%zu correlated outages; %lld subscribe ops failed closed", correlated,
            static_cast<long long>(quorum_failures)));
  Recap("subscriptions lost after recovery", "0 while quorum held",
        Fmt("%zu of %zu audited", lost, audited));
  return 0;
}
