// Reproduces Table 1: "Distribution of number of updates within a 24h
// period to targetted areas of interest in the social graph."
//
//   paper: 83% zero | 16% <10 | 0.95% <100 | 0.049% >1M | 0.0001% >100M

#include <vector>

#include "bench/bench_util.h"
#include "src/sim/random.h"
#include "src/workload/popularity.h"

using namespace bladerunner;

int main(int argc, char** argv) {
  ParseBenchOptions(argc, argv);
  PrintHeader("Table 1", "updates per area of interest within 24h");

  Rng rng(1);
  AreaPopularityModel model;
  const int64_t kAreas = 4000000;  // areas of interest sampled
  std::vector<int64_t> buckets(6, 0);
  int64_t max_updates = 0;
  for (int64_t i = 0; i < kAreas; ++i) {
    int64_t updates = model.SampleDailyUpdates(rng);
    buckets[AreaPopularityModel::BucketOf(updates)] += 1;
    max_updates = std::max(max_updates, updates);
  }

  PrintSection("measured distribution");
  PrintRow("%-10s %-14s %s", "updates", "areas", "fraction");
  const auto& labels = AreaPopularityModel::BucketLabels();
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (b == 3) {
      continue;  // Table 1 has no 100..1M bucket; it is empty by design
    }
    PrintRow("%-10s %-14lld %.5f%%", labels[b].c_str(), static_cast<long long>(buckets[b]),
             100.0 * static_cast<double>(buckets[b]) / static_cast<double>(kAreas));
  }
  PrintRow("hottest sampled area: %lld updates/day", static_cast<long long>(max_updates));

  PrintSection("paper vs measured");
  auto pct = [&](size_t b) {
    return Fmt("%.4f%%", 100.0 * static_cast<double>(buckets[b]) / static_cast<double>(kAreas));
  };
  Recap("areas with 0 updates", "83%", pct(0));
  Recap("areas with <10 updates", "16%", pct(1));
  Recap("areas with <100 updates", "0.95%", pct(2));
  Recap("areas with >1M updates", "0.049%", pct(4));
  Recap("areas with >100M updates", "0.0001%", pct(5));
  return 0;
}
