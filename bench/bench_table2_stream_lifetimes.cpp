// Reproduces Table 2: "Request-stream lifetime distribution."
//
//   paper: <15min 45% | 15min-1hr 26% | 1hr-24h 25% | 24hr+ 4%
//
// The paper's table is built like its Fig. 7: sample instants, look at the
// streams *active* at those instants, and record each one's total
// lifetime. That is a length-biased view: long streams are more likely to
// be caught alive. We therefore generate stream sessions from the model's
// *unbiased* per-started-stream distribution and apply the paper's
// snapshot methodology — Table 2 falls out of the bias, which is exactly
// the point.

#include <algorithm>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/random.h"
#include "src/workload/lifetimes.h"

using namespace bladerunner;

int main(int argc, char** argv) {
  ParseBenchOptions(argc, argv);
  PrintHeader("Table 2", "request-stream lifetime distribution (snapshot methodology)");

  Rng rng(2);
  StreamLifetimeModel model;

  // Generate a week of stream sessions (Poisson arrivals).
  struct Session {
    SimTime start;
    SimTime end;
  };
  const SimTime kHorizon = Days(7);
  const double kArrivalsPerSec = 10.0;
  std::vector<Session> sessions;
  SimTime t = 0;
  double started_mean_minutes = 0.0;
  while (t < kHorizon) {
    t += SecondsF(rng.Exponential(1.0 / kArrivalsPerSec));
    SimTime lifetime = model.SampleUnbiased(rng);
    sessions.push_back(Session{t, t + lifetime});
    started_mean_minutes += ToMinutes(lifetime);
  }
  started_mean_minutes /= static_cast<double>(sessions.size());

  // Snapshot instants two hours apart across days 2-6 (inside the steady
  // state), as the paper does for Fig. 7/Table 2.
  std::vector<int64_t> buckets(4, 0);
  int64_t sampled = 0;
  for (SimTime sample = Days(1); sample < Days(6); sample += Hours(2)) {
    for (const Session& s : sessions) {
      if (s.start <= sample && sample < s.end) {
        buckets[StreamLifetimeModel::BucketOf(s.end - s.start)] += 1;
        ++sampled;
      }
    }
  }

  PrintSection("measured distribution (streams active at sampled instants)");
  PrintRow("%-12s %-12s %s", "lifetime", "streams", "fraction");
  const auto& labels = StreamLifetimeModel::BucketLabels();
  for (size_t b = 0; b < buckets.size(); ++b) {
    PrintRow("%-12s %-12lld %.2f%%", labels[b].c_str(), static_cast<long long>(buckets[b]),
             100.0 * static_cast<double>(buckets[b]) / static_cast<double>(sampled));
  }
  PrintRow("started streams: %zu; unbiased mean lifetime %.1f min (snapshot-biased view is far"
           " longer)",
           sessions.size(), started_mean_minutes);

  PrintSection("paper vs measured");
  auto pct = [&](size_t b) {
    return Fmt("%.1f%%", 100.0 * static_cast<double>(buckets[b]) / static_cast<double>(sampled));
  };
  Recap("active streams living <15 min", "45%", pct(0));
  Recap("active streams living 15min-1hr", "26%", pct(1));
  Recap("active streams living 1hr-24h", "25%", pct(2));
  Recap("active streams living >24h", "4%", pct(3));
  return 0;
}
