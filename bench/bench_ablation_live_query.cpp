// Ablation (DESIGN.md §5.8): database-level live queries (src/livequery).
//
// The same deterministic comment-feed mutation replay (comments, edits,
// deletes, likes, unlikes — applied directly to TAO at fixed simulated
// times) runs against three serving strategies:
//
//   live     incremental view maintenance — deltas fold into materialized
//            views, re-executing only on window refills and unsupported
//            shapes
//   reexec   the same engine with reexecute_always: every delta re-runs
//            the registered query against TAO (the "no IVM" strawman)
//   poll     no live queries at all; devices poll the WAS on an interval
//            (the Table 1 baseline)
//
// Because the replay is fixed up front and a OneRegion write consumes no
// simulator randomness, the live and reexec clusters see byte-identical
// stores and change streams, so the bench can assert the incremental views
// are *bit-identical* to full re-execution (ViewStateJson comparison plus
// the engine's own in-run audit) while costing >=10x fewer TAO reads per
// mutation. `--smoke` runs a shortened replay with the same assertions
// (used by CI).

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/baseline/polling.h"
#include "src/core/cluster.h"
#include "src/core/device.h"
#include "src/workload/comment_feed.h"

using namespace bladerunner;

namespace {

struct Shape {
  int num_ops = 600;
  int num_viewers = 12;
  SimTime settle = Seconds(10);
};

struct Result {
  int64_t mutations = 0;  // replayed ops
  // Engine-side accounting (live / reexec modes).
  int64_t maintenance_reads = 0;  // TAO reads spent keeping views current
  int64_t deltas = 0;
  int64_t applied = 0;
  int64_t publishes = 0;
  int64_t suppressed = 0;
  int64_t reexecs = 0;
  int64_t refills = 0;
  bool audit_ok = false;
  std::string audit_diagnostic;
  std::vector<std::pair<Topic, std::string>> views;  // topic -> ViewStateJson
  // Poll-side accounting (poll mode).
  int64_t tao_reads = 0;  // point + range reads spent by the pollers
  int64_t polls = 0;
  int64_t empty_polls = 0;
};

ClusterConfig BaseConfig(uint64_t seed) {
  ClusterConfig config;
  config.seed = seed;
  config.brass_hosts_per_region = 1;
  return config;
}

SocialGraphConfig BaseGraph() {
  SocialGraphConfig graph_config;
  graph_config.num_users = 60;
  graph_config.num_videos = 2;
  return graph_config;
}

std::vector<CommentFeedOp> MakeOps(const BenchCluster& fixture, const Shape& shape) {
  CommentFeedShape feed;
  feed.num_ops = shape.num_ops;
  feed.delete_fraction = 0.08;
  feed.edit_fraction = 0.12;
  // Anchors: the graph's videos; likes target the first video as the
  // presence-counter post.
  Rng workload_rng(4242);
  std::vector<UserId> users(fixture.graph.users.begin(), fixture.graph.users.begin() + 40);
  return GenerateCommentFeedOps(feed, fixture.graph.videos, users, workload_rng);
}

// live / reexec: identical except for config.livequery.reexecute_always.
Result RunEngineMode(bool reexecute_always, const Shape& shape) {
  ClusterConfig config = BaseConfig(63);
  config.livequery.reexecute_always = reexecute_always;
  BenchCluster fixture = MakeLiveQueryBenchCluster(config, BaseGraph(), Topology::OneRegion());
  BladerunnerCluster& cluster = *fixture.cluster;
  LiveQueryEngine* engine = cluster.livequery();

  // Viewers split between the two declarative apps: comment feeds on both
  // videos, presence counters on the first.
  auto viewers = MakeDeviceFleet(
      fixture, 0, static_cast<size_t>(shape.num_viewers),
      [&fixture](DeviceAgent& viewer, size_t i) {
        ObjectId video = fixture.graph.videos[i % fixture.graph.videos.size()];
        viewer.SubscribeRaw("LiveFeed", "subscription { liveCommentFeed(videoId: " +
                                            std::to_string(video) + ") }");
        if (i % 3 == 0) {
          viewer.SubscribeRaw("LiveCount", "subscription { presenceCount(topicId: " +
                                              std::to_string(fixture.graph.videos[0]) + ") }");
        }
      });
  cluster.sim().RunFor(Seconds(5));  // registrations + snapshots settle

  // The replay measures maintenance work only: snapshot reads taken at
  // registration time above are excluded by sampling the counter here.
  MetricsRegistry& m = cluster.metrics();
  int64_t reads_before = m.GetCounter("livequery.maintenance_reads").value();

  std::vector<CommentFeedOp> ops = MakeOps(fixture, shape);
  CommentFeedApplier applier(&cluster.sim(), &cluster.tao());
  applier.ScheduleAll(cluster.sim(), ops, cluster.sim().Now());
  cluster.sim().RunFor(static_cast<SimTime>(shape.num_ops + 2) * CommentFeedShape{}.spacing);
  cluster.sim().RunFor(shape.settle);

  Result result;
  result.mutations = static_cast<int64_t>(ops.size());
  result.maintenance_reads = m.GetCounter("livequery.maintenance_reads").value() - reads_before;
  result.deltas = m.GetCounter("livequery.deltas").value();
  result.applied = m.GetCounter("livequery.applied").value();
  result.publishes = m.GetCounter("livequery.publishes").value();
  result.suppressed = m.GetCounter("livequery.suppressed").value();
  result.reexecs = m.GetCounter("livequery.reexecs").value();
  result.refills = m.GetCounter("livequery.refills").value();
  result.audit_ok = engine->AuditAll(&result.audit_diagnostic);
  for (const Topic& topic : engine->Topics()) {
    result.views.emplace_back(topic, engine->ViewStateJson(topic));
  }
  return result;
}

// poll: same replay, no live queries; viewers poll the comment range query.
Result RunPollMode(const Shape& shape) {
  BenchCluster fixture = MakeBenchCluster(BaseConfig(63), BaseGraph(), Topology::OneRegion());
  BladerunnerCluster& cluster = *fixture.cluster;

  std::vector<std::unique_ptr<LvcPollingClient>> pollers;
  for (int i = 0; i < shape.num_viewers; ++i) {
    ObjectId video = fixture.graph.videos[static_cast<size_t>(i) % fixture.graph.videos.size()];
    pollers.push_back(std::make_unique<LvcPollingClient>(
        &cluster, fixture.graph.users[static_cast<size_t>(i)], 0, DeviceProfile::kWifi, video,
        Seconds(2)));
    pollers.back()->Start();
  }
  cluster.sim().RunFor(Seconds(5));

  MetricsRegistry& m = cluster.metrics();
  int64_t reads_before =
      m.GetCounter("tao.point_reads").value() + m.GetCounter("tao.range_reads").value();

  std::vector<CommentFeedOp> ops = MakeOps(fixture, shape);
  CommentFeedApplier applier(&cluster.sim(), &cluster.tao());
  applier.ScheduleAll(cluster.sim(), ops, cluster.sim().Now());
  cluster.sim().RunFor(static_cast<SimTime>(shape.num_ops + 2) * CommentFeedShape{}.spacing);
  cluster.sim().RunFor(shape.settle);

  Result result;
  result.mutations = static_cast<int64_t>(ops.size());
  result.tao_reads = m.GetCounter("tao.point_reads").value() +
                     m.GetCounter("tao.range_reads").value() - reads_before;
  for (const auto& poller : pollers) {
    result.polls += static_cast<int64_t>(poller->polls());
    result.empty_polls += static_cast<int64_t>(poller->empty_polls());
    poller->Stop();
  }
  return result;
}

double PerMutation(int64_t reads, int64_t mutations) {
  return static_cast<double>(reads) / static_cast<double>(std::max<int64_t>(1, mutations));
}

int RunAndCompare(const Shape& shape) {
  Result live = RunEngineMode(/*reexecute_always=*/false, shape);
  Result reexec = RunEngineMode(/*reexecute_always=*/true, shape);
  Result poll = RunPollMode(shape);

  PrintSection(Fmt("the same %d-op replay, %d viewers", shape.num_ops, shape.num_viewers));
  PrintRow("%-36s %-12s %-12s %s", "", "live", "reexec", "poll");
  PrintRow("%-36s %-12lld %-12lld %lld", "TAO reads for query results",
           static_cast<long long>(live.maintenance_reads),
           static_cast<long long>(reexec.maintenance_reads),
           static_cast<long long>(poll.tao_reads));
  PrintRow("%-36s %-12.2f %-12.2f %.2f", "  per mutation",
           PerMutation(live.maintenance_reads, live.mutations),
           PerMutation(reexec.maintenance_reads, reexec.mutations),
           PerMutation(poll.tao_reads, poll.mutations));
  PrintRow("%-36s %-12lld %-12lld -", "deltas seen / applied",
           static_cast<long long>(live.deltas), static_cast<long long>(reexec.deltas));
  PrintRow("%-36s %-12lld %-12lld -", "ops published",
           static_cast<long long>(live.publishes), static_cast<long long>(reexec.publishes));
  PrintRow("%-36s %-12lld %-12lld -", "no-net-change deltas suppressed",
           static_cast<long long>(live.suppressed), static_cast<long long>(reexec.suppressed));
  PrintRow("%-36s %-12lld %-12lld -", "full re-executions",
           static_cast<long long>(live.reexecs + live.refills),
           static_cast<long long>(reexec.reexecs));
  PrintRow("%-36s %-12s %-12s -", "in-run audit vs TAO",
           live.audit_ok ? "pass" : "FAIL", reexec.audit_ok ? "pass" : "FAIL");
  PrintRow("%-36s -            -            %lld / %lld empty", "polls issued",
           static_cast<long long>(poll.polls), static_cast<long long>(poll.empty_polls));

  bool views_identical = live.views == reexec.views;
  double reduction =
      PerMutation(reexec.maintenance_reads, reexec.mutations) /
      std::max(1e-9, PerMutation(live.maintenance_reads, live.mutations));

  PrintSection("paper vs measured");
  Recap("query work per mutation", "IVM folds deltas instead of re-running queries",
        Fmt("%.1fx fewer TAO reads than re-execute", reduction));
  Recap("incremental == full re-execution", "views must not drift",
        views_identical ? "bit-identical ViewStateJson across modes" : "VIEWS DIVERGED");
  Recap("vs polling", "polls mostly return nothing (Table 1)",
        Fmt("%.2f reads/mutation polling vs %.2f live", PerMutation(poll.tao_reads, poll.mutations),
            PerMutation(live.maintenance_reads, live.mutations)));

  int failures = 0;
  if (!live.audit_ok) {
    PrintRow("FAIL: live-mode audit: %s", live.audit_diagnostic.c_str());
    ++failures;
  }
  if (!reexec.audit_ok) {
    PrintRow("FAIL: reexec-mode audit: %s", reexec.audit_diagnostic.c_str());
    ++failures;
  }
  if (!views_identical) {
    PrintRow("FAIL: incremental views differ from full re-execution");
    for (size_t i = 0; i < live.views.size() && i < reexec.views.size(); ++i) {
      if (live.views[i] != reexec.views[i]) {
        PrintRow("  %s:\n    live:   %s\n    reexec: %s", live.views[i].first.c_str(),
                 live.views[i].second.c_str(), reexec.views[i].second.c_str());
      }
    }
    ++failures;
  }
  if (live.views.empty()) {
    PrintRow("FAIL: no views registered");
    ++failures;
  }
  if (live.deltas == 0 || live.publishes == 0) {
    PrintRow("FAIL: no deltas flowed (deltas=%lld publishes=%lld)",
             static_cast<long long>(live.deltas), static_cast<long long>(live.publishes));
    ++failures;
  }
  if (reduction < 10.0) {
    PrintRow("FAIL: read reduction %.1fx is below 10x", reduction);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = ParseBenchOptions(argc, argv).smoke;
  Shape shape;
  if (smoke) {
    PrintHeader("Ablation 6 (smoke)", "live queries vs re-execute vs poll, short replay");
    shape.num_ops = 150;
    shape.num_viewers = 8;
    shape.settle = Seconds(5);
  } else {
    PrintHeader("Ablation 6", "database-level live queries vs re-execute vs poll");
  }
  return RunAndCompare(shape);
}
