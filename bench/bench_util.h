// Shared output helpers for the paper-reproduction benchmarks. Every bench
// prints (i) the rows/series of the table or figure it regenerates and
// (ii) a "paper vs measured" recap so EXPERIMENTS.md can be filled by
// reading the output.

#ifndef BLADERUNNER_BENCH_BENCH_UTIL_H_
#define BLADERUNNER_BENCH_BENCH_UTIL_H_

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/cluster.h"
#include "src/core/device.h"
#include "src/net/topology.h"
#include "src/sim/histogram.h"
#include "src/sim/time.h"
#include "src/workload/social_gen.h"

namespace bladerunner {

// ---- shared command-line handling ----
//
// Every bench accepts the same flags (previously copy-pasted into each main
// that needed one of them):
//   --smoke            quick mode (implies --perf in harness benches)
//   --perf             perf-harness mode where the bench supports it
//   --out PATH         write machine-readable results (JSON) to PATH
//   --check PATH       compare against a previous --out file
//   --tolerance X      allowed relative regression for --check (default .25)
//   --threads N        run the cluster on the partitioned kernel with N
//                      worker threads (N == 1 keeps the sequential kernel
//                      unless --lp-groups forces partitioning)
//   --lp-groups N      number of device-group LPs (default 16 when
//                      --threads > 1, else 0 = sequential; deliberately
//                      independent of the thread count so --threads 2 and
//                      --threads 8 produce identical results)
//   --fleet N          override the bench's device-fleet size where it
//                      honours one
//   --cell NAME        restrict a matrix bench (bench_scenario_matrix) to
//                      the named cell; repeatable
struct BenchOptions {
  bool smoke = false;
  bool perf = false;
  std::string out_path;
  std::string check_path;
  double tolerance = 0.25;
  int threads = 1;
  int lp_groups = -1;  // -1 = derive from threads
  long fleet = 0;      // 0 = bench default
  std::vector<std::string> cells;  // empty = run every cell

  // The cluster-facing translation of --threads/--lp-groups. Sequential
  // (all defaults) when threads == 1 and no explicit --lp-groups, so every
  // bench's default run stays byte-identical to the pre-LP kernel. The
  // derived group count is a constant, NOT a function of the thread count:
  // the LP layout determines results, threads only determine wall-clock.
  ClusterParallelConfig Parallel() const {
    ClusterParallelConfig parallel;
    parallel.threads = threads;
    parallel.device_lp_groups = lp_groups >= 0 ? lp_groups : (threads > 1 ? 16 : 0);
    return parallel;
  }
  void ApplyTo(ClusterConfig* config) const { config->parallel = Parallel(); }
};

// Process-wide copy of the parsed options so helpers deep inside a bench
// (the RunWorkload/MeasureFanout style functions that build their own
// clusters) can honour --threads without threading an options argument
// through every signature. Set by ParseBenchOptions; defaults before that.
inline BenchOptions& MutableBenchOptions() {
  static BenchOptions opts;
  return opts;
}
inline const BenchOptions& bench_options() { return MutableBenchOptions(); }

// Strict parser: every bench errors out on unrecognized flags, missing
// values, and non-numeric values instead of silently ignoring them. (A
// typo'd `--lp-gruops=8` used to run the sequential kernel and "pass" a
// parallel-kernel check.) Both `--flag value` and `--flag=value` spellings
// are accepted; flags starting with `--benchmark` pass through untouched
// for benches that hand argv on to google-benchmark (bench_micro).
//
// This non-exiting variant exists so the unit test (bench_options_test) can
// exercise rejection paths; benches call ParseBenchOptions below, which
// prints the error and exits 2.
inline bool ParseBenchOptionsInto(int argc, char** argv, BenchOptions* opts,
                                  std::string* error) {
  auto parse_long = [error](const std::string& flag, const std::string& text, long* out) {
    char* end = nullptr;
    errno = 0;
    long value = std::strtol(text.c_str(), &end, 10);
    if (text.empty() || errno != 0 || end == nullptr || *end != '\0') {
      *error = flag + " expects an integer, got '" + text + "'";
      return false;
    }
    *out = value;
    return true;
  };
  auto parse_double = [error](const std::string& flag, const std::string& text, double* out) {
    char* end = nullptr;
    errno = 0;
    double value = std::strtod(text.c_str(), &end);
    if (text.empty() || errno != 0 || end == nullptr || *end != '\0') {
      *error = flag + " expects a number, got '" + text + "'";
      return false;
    }
    *out = value;
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--benchmark", 0) == 0) {
      continue;  // google-benchmark's own flags (bench_micro forwards argv)
    }
    std::string flag = arg;
    std::string value;
    bool has_value = false;
    size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flag = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    const bool is_bool = flag == "--smoke" || flag == "--perf";
    const bool is_known = is_bool || flag == "--out" || flag == "--check" ||
                          flag == "--tolerance" || flag == "--threads" ||
                          flag == "--lp-groups" || flag == "--fleet" || flag == "--cell";
    if (!is_known) {
      *error = "unrecognized flag '" + arg +
               "' (shared bench flags: --smoke --perf --out --check --tolerance "
               "--threads --lp-groups --fleet --cell)";
      return false;
    }
    if (is_bool) {
      if (has_value) {
        *error = flag + " takes no value";
        return false;
      }
      opts->smoke = opts->smoke || flag == "--smoke";
      opts->perf = true;  // --smoke implies --perf in harness benches
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        *error = flag + " expects a value";
        return false;
      }
      value = argv[++i];
    }
    if (flag == "--out") {
      opts->out_path = value;
    } else if (flag == "--check") {
      opts->check_path = value;
    } else if (flag == "--cell") {
      opts->cells.push_back(value);
    } else if (flag == "--tolerance") {
      if (!parse_double(flag, value, &opts->tolerance)) {
        return false;
      }
    } else if (flag == "--threads") {
      long threads = 0;
      if (!parse_long(flag, value, &threads)) {
        return false;
      }
      opts->threads = static_cast<int>(threads);
      if (opts->threads < 1) opts->threads = 1;
    } else if (flag == "--lp-groups") {
      long groups = 0;
      if (!parse_long(flag, value, &groups)) {
        return false;
      }
      opts->lp_groups = static_cast<int>(groups);
    } else {  // --fleet
      if (!parse_long(flag, value, &opts->fleet)) {
        return false;
      }
    }
  }
  return true;
}

inline BenchOptions ParseBenchOptions(int argc, char** argv) {
  BenchOptions opts;
  std::string error;
  if (!ParseBenchOptionsInto(argc, argv, &opts, &error)) {
    std::fprintf(stderr, "%s: %s\n", argc > 0 ? argv[0] : "bench", error.c_str());
    std::exit(2);
  }
  MutableBenchOptions() = opts;
  return opts;
}

// ---- shared cluster/workload fixture ----
//
// Most benches open the same way: build a cluster from a ClusterConfig,
// generate a social graph into its TAO, and run a short warmup so
// replication and caches settle before the measured scenario starts.
// BladerunnerCluster is neither copyable nor movable, so the fixture owns
// it behind a unique_ptr.
struct BenchCluster {
  std::unique_ptr<BladerunnerCluster> cluster;
  SocialGraph graph;

  Simulator& sim() { return cluster->sim(); }
  MetricsRegistry& metrics() { return cluster->metrics(); }
};

inline BenchCluster MakeBenchCluster(const ClusterConfig& config,
                                     const SocialGraphConfig& graph_config,
                                     Topology topology = Topology::ThreeRegions(),
                                     SimTime warmup = Seconds(2)) {
  BenchCluster fixture;
  // --threads/--lp-groups reach every fixture-built cluster automatically;
  // a bench that set an explicit parallel config wins.
  ClusterConfig effective = config;
  if (effective.parallel.threads == 1 && effective.parallel.device_lp_groups == 0) {
    bench_options().ApplyTo(&effective);
  }
  fixture.cluster = std::make_unique<BladerunnerCluster>(effective, std::move(topology));
  fixture.graph =
      GenerateSocialGraph(fixture.cluster->tao(), fixture.cluster->sim().rng(), graph_config);
  fixture.sim().RunFor(warmup);
  return fixture;
}

// Same fixture with live queries enabled: the cluster registers the
// declarative LiveFeed/LiveCount apps (src/apps/comment_feed.h,
// src/apps/presence_counter.h) and owns a LiveQueryEngine, so a bench can
// subscribe devices with SubscribeRaw("LiveFeed", ...) and reach the
// engine via fixture.cluster->livequery().
inline BenchCluster MakeLiveQueryBenchCluster(ClusterConfig config,
                                              const SocialGraphConfig& graph_config,
                                              Topology topology = Topology::ThreeRegions(),
                                              SimTime warmup = Seconds(2)) {
  config.livequery.enabled = true;
  return MakeBenchCluster(config, graph_config, std::move(topology), warmup);
}

// The fleet-construction loop every bench used to hand-roll: `count`
// devices for graph.users[first_user ...], all in `region` (or spread
// round-robin across regions when region < 0), with `setup` run on each
// fresh device — the place for Subscribe*() calls.
inline std::vector<std::unique_ptr<DeviceAgent>> MakeDeviceFleet(
    BenchCluster& fixture, size_t first_user, size_t count,
    const std::function<void(DeviceAgent&, size_t)>& setup = nullptr,
    DeviceProfile profile = DeviceProfile::kWifi, RegionId region = 0) {
  std::vector<std::unique_ptr<DeviceAgent>> fleet;
  fleet.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    RegionId r = region >= 0 ? region
                             : static_cast<RegionId>(i % fixture.cluster->topology().num_regions());
    fleet.push_back(std::make_unique<DeviceAgent>(
        fixture.cluster.get(), fixture.graph.users[first_user + i], r, profile));
    if (setup) {
      setup(*fleet.back(), i);
    }
  }
  return fleet;
}

inline void PrintHeader(const std::string& id, const std::string& title) {
  std::printf("==============================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("==============================================================================\n");
}

inline void PrintSection(const std::string& name) { std::printf("\n-- %s --\n", name.c_str()); }

inline void PrintRow(const char* format, ...) {
  va_list args;
  va_start(args, format);
  std::vprintf(format, args);
  va_end(args);
  std::printf("\n");
}

// Prints a CDF as "p  value_seconds" pairs at the given quantiles.
inline void PrintCdfSeconds(const std::string& label, const Histogram& histogram) {
  std::printf("%-28s", label.c_str());
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    std::printf("  p%02.0f=%.3fs", q * 100.0, histogram.Quantile(q) / 1e6);
  }
  std::printf("  (n=%llu)\n", static_cast<unsigned long long>(histogram.count()));
}

inline void PrintCdfMillis(const std::string& label, const Histogram& histogram) {
  std::printf("%-28s", label.c_str());
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    std::printf("  p%02.0f=%.0fms", q * 100.0, histogram.Quantile(q) / 1e3);
  }
  std::printf("  (n=%llu)\n", static_cast<unsigned long long>(histogram.count()));
}

// One "paper vs measured" recap line.
inline void Recap(const std::string& what, const std::string& paper, const std::string& measured) {
  std::printf("  %-44s paper: %-22s measured: %s\n", what.c_str(), paper.c_str(),
              measured.c_str());
}

inline std::string Fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

}  // namespace bladerunner

#endif  // BLADERUNNER_BENCH_BENCH_UTIL_H_
