// Component microbenchmarks (google-benchmark): the hot paths of the
// simulated infrastructure itself — rendezvous hashing, topic ops, BURST
// framing, the LVC ranked buffer, histograms, the event queue, and the
// query-language front end.
//
// Invoked with `--perf` the binary is instead the standing perf-regression
// harness (docs/PERF.md): it times the simulation kernel, Pylon fanout,
// and an end-to-end LVC scenario against wall clock and emits one JSON
// row per measurement ({bench, metric, value, unit}).
//   --perf            run the harness at full size
//   --smoke           shrink the workloads (CI sanity; seconds, not minutes)
//   --out FILE        write the JSON rows to FILE (default: stdout only)
//   --check FILE      compare against a committed baseline (BENCH_PR7.json);
//                     exit nonzero if any matching throughput row regressed
//                     by more than --tolerance (default 0.25)

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/burst/durable_log.h"
#include "src/burst/frames.h"
#include "src/core/cluster.h"
#include "src/core/device.h"
#include "src/graphql/parser.h"
#include "src/graphql/value.h"
#include "src/pylon/rendezvous.h"
#include "src/pylon/topic.h"
#include "src/sim/histogram.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/livequery/engine.h"
#include "src/was/resolvers.h"
#include "src/workload/comment_feed.h"
#include "src/workload/social_gen.h"

namespace bladerunner {
namespace {

void BM_TopicHash(benchmark::State& state) {
  Topic topic = LvcTopic(1234567);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TopicHash(topic));
  }
}
BENCHMARK(BM_TopicHash);

void BM_TopicSplit(benchmark::State& state) {
  Topic topic = "/TI/123456/7890";
  for (auto _ : state) {
    benchmark::DoNotOptimize(SplitTopic(topic));
  }
}
BENCHMARK(BM_TopicSplit);

void BM_RendezvousTopK(benchmark::State& state) {
  std::vector<uint64_t> nodes;
  for (uint64_t i = 1; i <= static_cast<uint64_t>(state.range(0)); ++i) {
    nodes.push_back(i);
  }
  int64_t topic_id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RendezvousTopK(LvcTopic(topic_id++), nodes, 3));
  }
}
BENCHMARK(BM_RendezvousTopK)->Arg(8)->Arg(64)->Arg(512);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Zipf(1000000, 1.1));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Rng rng(2);
  for (auto _ : state) {
    h.Record(rng.LogNormal(5000.0, 0.8));
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramQuantile(benchmark::State& state) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    h.Record(rng.LogNormal(5000.0, 0.8));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.Quantile(0.99));
  }
}
BENCHMARK(BM_HistogramQuantile);

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim(1);
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(Micros(i * 7 % 997), []() {});
    }
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleRun);

void BM_GraphqlParseQuery(benchmark::State& state) {
  std::string text =
      "query { comments(video: 123456, after: 98765, first: 25) "
      "{ id text author time indexTime suppressed } }";
  for (auto _ : state) {
    benchmark::DoNotOptimize(Parse(text));
  }
}
BENCHMARK(BM_GraphqlParseQuery);

void BM_ValueToJson(benchmark::State& state) {
  Value v;
  v.Set("id", 123456789);
  v.Set("text", "a typical comment body with some length to it");
  v.Set("author", 424242);
  v.Set("quality", 0.87);
  ValueList tags;
  for (int i = 0; i < 5; ++i) {
    tags.push_back(Value("tag" + std::to_string(i)));
  }
  v.Set("tags", Value(std::move(tags)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.ToJson());
  }
}
BENCHMARK(BM_ValueToJson);

void BM_BurstFrameWireSize(benchmark::State& state) {
  ResponseFrame frame;
  frame.key = StreamKey{42, 7};
  for (int i = 0; i < 4; ++i) {
    Value payload;
    payload.Set("id", 1000 + i);
    payload.Set("text", "delta payload body");
    frame.batch.push_back(Delta::Data(std::move(payload), static_cast<uint64_t>(i)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(frame.WireSize());
  }
}
BENCHMARK(BM_BurstFrameWireSize);

void BM_StreamKeyHash(benchmark::State& state) {
  StreamKeyHash hasher;
  StreamKey key{123456789, 42};
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher(key));
    key.sid += 1;
  }
}
BENCHMARK(BM_StreamKeyHash);

// ---- perf harness (--perf / --smoke) ----

// One measurement row of BENCH_PR7.json. All metrics emitted by the
// harness are throughputs (higher is better); the regression check in
// CheckAgainstBaseline relies on that.
struct PerfRow {
  std::string bench;
  std::string metric;
  double value = 0.0;
  std::string unit;
};

struct PerfShape {
  // Kernel: total timer events pushed through a bare Simulator.
  size_t kernel_events = 4000000;
  // One cancel per this many scheduled events (exercises the slot table).
  size_t kernel_cancel_every = 4;
  // Fanout: viewers subscribed to the hot video / comments published.
  int fanout_viewers = 60;
  int fanout_comments = 400;
  // End-to-end: LVC burst length driven through the full cluster.
  int e2e_viewers = 40;
  int e2e_comments = 600;
  // Live query: mutation ops folded into materialized views.
  int livequery_ops = 40000;
  int livequery_views = 8;
  // Durable log: entries appended (rotation/retention churn included)
  // before a full replay of the retained suffix.
  size_t durable_appends = 400000;
};

PerfShape SmokeShape() {
  PerfShape shape;
  shape.kernel_events = 400000;
  shape.fanout_viewers = 15;
  shape.fanout_comments = 60;
  shape.e2e_viewers = 10;
  shape.e2e_comments = 80;
  shape.livequery_ops = 4000;
  shape.durable_appends = 40000;
  return shape;
}

double WallSeconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Kernel events/sec: schedule/cancel/run batches through a bare Simulator
// with no cluster on top, so the number isolates the event-queue rewrite
// (4-ary heap + slot table) from everything else.
PerfRow BenchKernel(const PerfShape& shape) {
  Simulator sim(1);
  Rng workload_rng(4242);
  uint64_t executed_target = 0;
  auto start = std::chrono::steady_clock::now();
  constexpr size_t kBatch = 1000;
  std::vector<TimerId> batch_ids(kBatch, kInvalidTimerId);
  for (size_t scheduled = 0; scheduled < shape.kernel_events; scheduled += kBatch) {
    for (size_t i = 0; i < kBatch; ++i) {
      SimTime delay = Micros(static_cast<int64_t>(workload_rng.Uniform(0.0, 5000.0)));
      batch_ids[i] = sim.Schedule(delay, []() {});
    }
    for (size_t i = 0; i < kBatch; i += shape.kernel_cancel_every) {
      sim.Cancel(batch_ids[i]);
    }
    sim.Run();
  }
  executed_target = sim.events_executed();
  double elapsed = WallSeconds(start);
  PerfRow row;
  row.bench = "kernel";
  row.metric = "events_per_sec";
  row.value = static_cast<double>(executed_target) / elapsed;
  row.unit = "events/s";
  return row;
}

// Pylon fanout throughput: a hot LVC video with many subscribed viewers;
// every published comment fans out to every viewer's BRASS host. Reports
// fanout sends per wall second across publish + fanout + delivery.
PerfRow BenchPylonFanout(const PerfShape& shape) {
  ClusterConfig config;
  config.seed = 1337;
  SocialGraphConfig graph_config;
  graph_config.num_users = static_cast<size_t>(shape.fanout_viewers + 50);
  BenchCluster fixture = MakeBenchCluster(config, graph_config, Topology::OneRegion());
  BladerunnerCluster& cluster = *fixture.cluster;
  ObjectId video = fixture.graph.videos[0];

  std::vector<std::unique_ptr<DeviceAgent>> viewers;
  for (int i = 0; i < shape.fanout_viewers; ++i) {
    viewers.push_back(std::make_unique<DeviceAgent>(
        &cluster, fixture.graph.users[static_cast<size_t>(i)], 0, DeviceProfile::kWifi));
    viewers.back()->SubscribeLvc(video);
  }
  cluster.sim().RunFor(Seconds(5));
  DeviceAgent commenter(&cluster, fixture.graph.users[fixture.graph.users.size() - 1], 0,
                        DeviceProfile::kWifi);

  const Counter& fanout_sends = cluster.metrics().GetCounter("pylon.fanout_sends");
  int64_t sends_before = fanout_sends.value();
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < shape.fanout_comments; ++i) {
    commenter.PostComment(video, "perf comment", "en");
    cluster.sim().RunFor(Millis(250));
  }
  cluster.sim().RunFor(Seconds(10));
  double elapsed = WallSeconds(start);

  PerfRow row;
  row.bench = "pylon_fanout";
  row.metric = "fanout_sends_per_sec";
  row.value = static_cast<double>(fanout_sends.value() - sends_before) / elapsed;
  row.unit = "sends/s";
  return row;
}

// End-to-end throughput: the same LVC burst driven through the full stack
// (device -> WAS -> TAO -> Pylon -> BRASS -> BURST -> device), reported as
// simulator events retired per wall second — the number that bounds how
// much scenario any bench can afford.
PerfRow BenchEndToEnd(const PerfShape& shape) {
  ClusterConfig config;
  config.seed = 2024;
  SocialGraphConfig graph_config;
  graph_config.num_users = static_cast<size_t>(shape.e2e_viewers + 50);
  BenchCluster fixture = MakeBenchCluster(config, graph_config, Topology::ThreeRegions());
  BladerunnerCluster& cluster = *fixture.cluster;
  ObjectId video = fixture.graph.videos[0];

  std::vector<std::unique_ptr<DeviceAgent>> viewers;
  for (int i = 0; i < shape.e2e_viewers; ++i) {
    viewers.push_back(std::make_unique<DeviceAgent>(
        &cluster, fixture.graph.users[static_cast<size_t>(i)], i % 3, DeviceProfile::kWifi));
    viewers.back()->SubscribeLvc(video);
  }
  cluster.sim().RunFor(Seconds(5));
  DeviceAgent commenter(&cluster, fixture.graph.users[fixture.graph.users.size() - 1], 0,
                        DeviceProfile::kWifi);

  uint64_t events_before = cluster.sim().events_executed();
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < shape.e2e_comments; ++i) {
    commenter.PostComment(video, "perf comment", "en");
    cluster.sim().RunFor(Millis(200));
  }
  cluster.sim().RunFor(Seconds(10));
  double elapsed = WallSeconds(start);

  PerfRow row;
  row.bench = "e2e_lvc";
  row.metric = "sim_events_per_wall_sec";
  row.value = static_cast<double>(cluster.sim().events_executed() - events_before) / elapsed;
  row.unit = "events/s";
  return row;
}

// Live-query fold throughput: a bare Simulator + TAO + WAS + engine (no
// Pylon, so publishes are no-ops and the number isolates delta folding),
// replaying a deterministic comment-feed workload against a handful of
// registered views. Reports deltas applied per wall second.
PerfRow BenchLiveQueryFold(const PerfShape& shape) {
  Topology topology = Topology::OneRegion();
  Simulator sim(7);
  MetricsRegistry metrics;
  TaoStore tao(&sim, &topology, TaoConfig{}, &metrics);
  WebAppServer was(&sim, 0, &tao, nullptr, WasConfig{}, &metrics, nullptr);
  InstallSocialSchema(was);
  LiveQueryConfig lq_config;
  lq_config.enabled = true;
  LiveQueryEngine engine(&sim, &tao, &was, lq_config, &metrics);

  std::vector<UserId> users;
  for (int i = 0; i < 20; ++i) {
    users.push_back(CreateUser(tao, "perf_user" + std::to_string(i), "en"));
  }
  std::vector<ObjectId> videos;
  for (int i = 0; i < shape.livequery_views / 2; ++i) {
    videos.push_back(CreateVideo(tao, users[0], "perf video " + std::to_string(i)));
  }
  sim.RunFor(Seconds(1));
  for (ObjectId video : videos) {
    LiveQueryRegistration feed;
    feed.topic = LiveFeedTopic(video);
    feed.viewer = users[0];
    feed.query = "{ comments(video: " + std::to_string(video) + ", first: 25) { id text } }";
    engine.Register(feed);
    LiveQueryRegistration count;
    count.topic = LiveCountTopic(video);
    count.viewer = users[0];
    count.query = "{ likeCount(post: " + std::to_string(video) + ") }";
    engine.Register(count);
  }

  CommentFeedShape feed_shape;
  feed_shape.num_ops = shape.livequery_ops;
  feed_shape.spacing = Micros(50);
  Rng workload_rng(4242);
  std::vector<CommentFeedOp> ops = GenerateCommentFeedOps(feed_shape, videos, users, workload_rng);
  CommentFeedApplier applier(&sim, &tao);

  const Counter& applied = metrics.GetCounter("livequery.applied");
  int64_t applied_before = applied.value();
  auto start = std::chrono::steady_clock::now();
  applier.ScheduleAll(sim, ops, sim.Now());
  sim.Run();
  double elapsed = WallSeconds(start);

  PerfRow row;
  row.bench = "livequery_fold";
  row.metric = "folds_per_sec";
  row.value = static_cast<double>(applied.value() - applied_before) / elapsed;
  row.unit = "folds/s";
  return row;
}

// Durable-log throughput: appends through rotation + retention churn on a
// bare DurableTopicLog, then a full batched replay of the retained suffix.
// Reports log ops (appends + entries read) per wall second.
PerfRow BenchDurableLog(const PerfShape& shape) {
  DurableTopicLog log{DurableLogConfig{}};
  Value payload;
  payload.Set("__type", "Tick");
  payload.Set("channel", "/Ticker/1");
  payload.Set("tick", static_cast<int64_t>(0));
  auto start = std::chrono::steady_clock::now();
  for (size_t i = 1; i <= shape.durable_appends; ++i) {
    log.Append(i, payload, Micros(static_cast<int64_t>(i)));
  }
  uint64_t entries_read = 0;
  uint64_t cursor = log.oldest_retained_seq() - 1;
  while (cursor < log.last_seq()) {
    ReadResult r = log.ReadAfter(cursor, 64);
    if (r.entries.empty()) {
      break;
    }
    entries_read += r.entries.size();
    cursor = r.entries.back()->seq;
  }
  double elapsed = WallSeconds(start);
  PerfRow row;
  row.bench = "durable_log";
  row.metric = "log_ops_per_sec";
  row.value = static_cast<double>(shape.durable_appends + entries_read) / elapsed;
  row.unit = "ops/s";
  return row;
}

std::string RowsToJson(const std::vector<PerfRow>& rows) {
  std::ostringstream out;
  out << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    out << "  {\"bench\": \"" << rows[i].bench << "\", \"metric\": \"" << rows[i].metric
        << "\", \"value\": " << std::fixed << rows[i].value << ", \"unit\": \"" << rows[i].unit
        << "\"}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
  return out.str();
}

// Minimal parser for the committed baseline: BENCH_PR7.json is written by
// RowsToJson above, so one row per line with fixed key order is assumed.
std::vector<PerfRow> ParseBaseline(const std::string& path) {
  std::vector<PerfRow> rows;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    PerfRow row;
    auto field = [&line](const char* key) -> std::string {
      std::string marker = std::string("\"") + key + "\": ";
      size_t at = line.find(marker);
      if (at == std::string::npos) {
        return "";
      }
      at += marker.size();
      size_t end;
      if (line[at] == '"') {
        ++at;
        end = line.find('"', at);
      } else {
        end = line.find_first_of(",}", at);
      }
      return end == std::string::npos ? "" : line.substr(at, end - at);
    };
    row.bench = field("bench");
    row.metric = field("metric");
    std::string value = field("value");
    if (row.bench.empty() || row.metric.empty() || value.empty()) {
      continue;
    }
    row.value = std::stod(value);
    row.unit = field("unit");
    rows.push_back(row);
  }
  return rows;
}

// Exit-code contract for CI: 0 when every row matched in the baseline is
// within tolerance, 1 on a regression. Rows missing from the baseline are
// reported but not fatal (a new bench must be committable).
int CheckAgainstBaseline(const std::vector<PerfRow>& rows, const std::string& path,
                         double tolerance) {
  std::vector<PerfRow> baseline = ParseBaseline(path);
  if (baseline.empty()) {
    std::fprintf(stderr, "perf-check: no baseline rows in %s\n", path.c_str());
    return 1;
  }
  int failures = 0;
  for (const PerfRow& row : rows) {
    const PerfRow* base = nullptr;
    for (const PerfRow& b : baseline) {
      if (b.bench == row.bench && b.metric == row.metric) {
        base = &b;
        break;
      }
    }
    if (base == nullptr) {
      std::printf("perf-check: %s/%s not in baseline (skipped)\n", row.bench.c_str(),
                  row.metric.c_str());
      continue;
    }
    double floor = base->value * (1.0 - tolerance);
    bool ok = row.value >= floor;
    std::printf("perf-check: %s/%s %.0f vs baseline %.0f (floor %.0f) %s\n", row.bench.c_str(),
                row.metric.c_str(), row.value, base->value, floor, ok ? "ok" : "REGRESSED");
    if (!ok) {
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

int RunPerfHarness(bool smoke, const std::string& out_path, const std::string& check_path,
                   double tolerance) {
  PerfShape shape = smoke ? SmokeShape() : PerfShape{};
  std::vector<PerfRow> rows;
  rows.push_back(BenchKernel(shape));
  rows.push_back(BenchPylonFanout(shape));
  rows.push_back(BenchEndToEnd(shape));
  rows.push_back(BenchLiveQueryFold(shape));
  rows.push_back(BenchDurableLog(shape));

  std::string json = RowsToJson(rows);
  std::fputs(json.c_str(), stdout);
  for (const PerfRow& row : rows) {
    if (!(row.value > 0.0)) {
      std::fprintf(stderr, "perf: %s/%s produced a non-positive value\n", row.bench.c_str(),
                   row.metric.c_str());
      return 1;
    }
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json;
  }
  if (!check_path.empty()) {
    return CheckAgainstBaseline(rows, check_path, tolerance);
  }
  return 0;
}

}  // namespace
}  // namespace bladerunner

int main(int argc, char** argv) {
  bladerunner::BenchOptions opts = bladerunner::ParseBenchOptions(argc, argv);
  if (opts.perf) {
    return bladerunner::RunPerfHarness(opts.smoke, opts.out_path, opts.check_path,
                                       opts.tolerance);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
