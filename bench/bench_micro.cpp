// Component microbenchmarks (google-benchmark): the hot paths of the
// simulated infrastructure itself — rendezvous hashing, topic ops, BURST
// framing, the LVC ranked buffer, histograms, the event queue, and the
// query-language front end.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "src/burst/frames.h"
#include "src/graphql/parser.h"
#include "src/graphql/value.h"
#include "src/pylon/rendezvous.h"
#include "src/pylon/topic.h"
#include "src/sim/histogram.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace bladerunner {
namespace {

void BM_TopicHash(benchmark::State& state) {
  Topic topic = LvcTopic(1234567);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TopicHash(topic));
  }
}
BENCHMARK(BM_TopicHash);

void BM_TopicSplit(benchmark::State& state) {
  Topic topic = "/TI/123456/7890";
  for (auto _ : state) {
    benchmark::DoNotOptimize(SplitTopic(topic));
  }
}
BENCHMARK(BM_TopicSplit);

void BM_RendezvousTopK(benchmark::State& state) {
  std::vector<uint64_t> nodes;
  for (uint64_t i = 1; i <= static_cast<uint64_t>(state.range(0)); ++i) {
    nodes.push_back(i);
  }
  int64_t topic_id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RendezvousTopK(LvcTopic(topic_id++), nodes, 3));
  }
}
BENCHMARK(BM_RendezvousTopK)->Arg(8)->Arg(64)->Arg(512);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Zipf(1000000, 1.1));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Rng rng(2);
  for (auto _ : state) {
    h.Record(rng.LogNormal(5000.0, 0.8));
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramQuantile(benchmark::State& state) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    h.Record(rng.LogNormal(5000.0, 0.8));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.Quantile(0.99));
  }
}
BENCHMARK(BM_HistogramQuantile);

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim(1);
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(Micros(i * 7 % 997), []() {});
    }
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleRun);

void BM_GraphqlParseQuery(benchmark::State& state) {
  std::string text =
      "query { comments(video: 123456, after: 98765, first: 25) "
      "{ id text author time indexTime suppressed } }";
  for (auto _ : state) {
    benchmark::DoNotOptimize(Parse(text));
  }
}
BENCHMARK(BM_GraphqlParseQuery);

void BM_ValueToJson(benchmark::State& state) {
  Value v;
  v.Set("id", 123456789);
  v.Set("text", "a typical comment body with some length to it");
  v.Set("author", 424242);
  v.Set("quality", 0.87);
  ValueList tags;
  for (int i = 0; i < 5; ++i) {
    tags.push_back(Value("tag" + std::to_string(i)));
  }
  v.Set("tags", Value(std::move(tags)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.ToJson());
  }
}
BENCHMARK(BM_ValueToJson);

void BM_BurstFrameWireSize(benchmark::State& state) {
  ResponseFrame frame;
  frame.key = StreamKey{42, 7};
  for (int i = 0; i < 4; ++i) {
    Value payload;
    payload.Set("id", 1000 + i);
    payload.Set("text", "delta payload body");
    frame.batch.push_back(Delta::Data(std::move(payload), static_cast<uint64_t>(i)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(frame.WireSize());
  }
}
BENCHMARK(BM_BurstFrameWireSize);

void BM_StreamKeyHash(benchmark::State& state) {
  StreamKeyHash hasher;
  StreamKey key{123456789, 42};
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher(key));
    key.sid += 1;
  }
}
BENCHMARK(BM_StreamKeyHash);

}  // namespace
}  // namespace bladerunner

BENCHMARK_MAIN();
