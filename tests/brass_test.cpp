// Tests for the BRASS layer: serverless app spawning, the per-host Pylon
// subscription manager (dedup, unsubscribe-on-last-stream), routing
// policies, host drain/crash/revive, and Pylon quorum-loss signalling.

#include <gtest/gtest.h>

#include <memory>

#include "src/apps/registry.h"
#include "src/brass/app_descriptor.h"
#include "src/core/cluster.h"
#include "src/core/device.h"
#include "src/was/resolvers.h"
#include "src/workload/social_gen.h"

namespace bladerunner {
namespace {

class BrassTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.seed = 77;
    config.brass_hosts_per_region = 2;
    cluster_ = std::make_unique<BladerunnerCluster>(config);
    SocialGraphConfig graph_config;
    graph_config.num_users = 30;
    graph_config.num_videos = 3;
    graph_config.num_threads = 5;
    graph_ = GenerateSocialGraph(cluster_->tao(), cluster_->sim().rng(), graph_config);
    cluster_->sim().RunFor(Seconds(2));
  }

  size_t TotalStreams() {
    size_t n = 0;
    for (size_t i = 0; i < cluster_->NumBrassHosts(); ++i) {
      n += cluster_->brass_host(i).StreamCount();
    }
    return n;
  }

  std::unique_ptr<BladerunnerCluster> cluster_;
  SocialGraph graph_;
};

TEST_F(BrassTest, ServerlessSpawnOnFirstStream) {
  for (size_t i = 0; i < cluster_->NumBrassHosts(); ++i) {
    EXPECT_EQ(cluster_->brass_host(i).AppInstanceCount(), 0u);
  }
  DeviceAgent viewer(cluster_.get(), graph_.users[0], 0, DeviceProfile::kWifi);
  viewer.SubscribeLvc(graph_.videos[0]);
  cluster_->sim().RunFor(Seconds(3));
  EXPECT_EQ(cluster_->metrics().GetCounter("brass.app_spawns").value(), 1);
  size_t instances = 0;
  for (size_t i = 0; i < cluster_->NumBrassHosts(); ++i) {
    instances += cluster_->brass_host(i).AppInstanceCount();
  }
  EXPECT_EQ(instances, 1u);
}

TEST_F(BrassTest, SecondStreamReusesInstance) {
  DeviceAgent a(cluster_.get(), graph_.users[0], 0, DeviceProfile::kWifi);
  a.SubscribeLvc(graph_.videos[0]);
  cluster_->sim().RunFor(Seconds(3));
  // Same device opens a second LVC stream: the serving host (same via
  // load/region) must not spawn another instance of the same app.
  a.SubscribeLvc(graph_.videos[1]);
  cluster_->sim().RunFor(Seconds(3));
  for (size_t i = 0; i < cluster_->NumBrassHosts(); ++i) {
    EXPECT_LE(cluster_->brass_host(i).AppInstanceCount(), 1u);
  }
}

TEST_F(BrassTest, SubscriptionManagerDedupsPylonSubscriptions) {
  // Two devices in the same region watch the same video; if they land on
  // the same host, only one Pylon subscription for the topic may exist.
  ClusterConfig config;
  config.seed = 78;
  config.brass_hosts_per_region = 1;  // force both onto one host
  config.was.lvc_subscribe_friend_topics = false;  // count only the main topic
  BladerunnerCluster cluster(config, Topology::OneRegion());
  SocialGraphConfig gc;
  gc.num_users = 10;
  gc.num_videos = 1;
  SocialGraph graph = GenerateSocialGraph(cluster.tao(), cluster.sim().rng(), gc);
  cluster.sim().RunFor(Seconds(2));

  DeviceAgent a(&cluster, graph.users[0], 0, DeviceProfile::kWifi);
  DeviceAgent b(&cluster, graph.users[1], 0, DeviceProfile::kWifi);
  a.SubscribeLvc(graph.videos[0]);
  b.SubscribeLvc(graph.videos[0]);
  cluster.sim().RunFor(Seconds(3));

  EXPECT_EQ(cluster.brass_host(0).StreamCount(), 2u);
  EXPECT_EQ(cluster.brass_host(0).PylonSubscriptionCount(), 1u);
  EXPECT_EQ(cluster.metrics().GetCounter("brass.pylon_subscribes").value(), 1);
}

TEST_F(BrassTest, LastStreamLeavingUnsubscribesTopic) {
  ClusterConfig config;
  config.seed = 79;
  config.brass_hosts_per_region = 1;
  config.was.lvc_subscribe_friend_topics = false;
  BladerunnerCluster cluster(config, Topology::OneRegion());
  SocialGraphConfig gc;
  gc.num_users = 10;
  gc.num_videos = 1;
  SocialGraph graph = GenerateSocialGraph(cluster.tao(), cluster.sim().rng(), gc);
  cluster.sim().RunFor(Seconds(2));

  DeviceAgent a(&cluster, graph.users[0], 0, DeviceProfile::kWifi);
  uint64_t sid = a.SubscribeLvc(graph.videos[0]);
  cluster.sim().RunFor(Seconds(3));
  EXPECT_EQ(cluster.brass_host(0).PylonSubscriptionCount(), 1u);

  a.CancelStream(sid);
  cluster.sim().RunFor(Seconds(3));
  EXPECT_EQ(cluster.brass_host(0).PylonSubscriptionCount(), 0u);
  EXPECT_EQ(cluster.metrics().GetCounter("brass.pylon_unsubscribes").value(), 1);
}

TEST_F(BrassTest, TopicRoutingPolicyKeepsTopicOnOneHost) {
  ClusterConfig config;
  config.seed = 80;
  config.brass_hosts_per_region = 4;
  config.was.lvc_subscribe_friend_topics = false;
  config.routing_policies["LVC"] = BrassRoutingPolicy::kByTopic;
  BladerunnerCluster cluster(config, Topology::OneRegion());
  SocialGraphConfig gc;
  gc.num_users = 20;
  gc.num_videos = 1;
  SocialGraph graph = GenerateSocialGraph(cluster.tao(), cluster.sim().rng(), gc);
  cluster.sim().RunFor(Seconds(2));

  std::vector<std::unique_ptr<DeviceAgent>> devices;
  for (int i = 0; i < 8; ++i) {
    devices.push_back(std::make_unique<DeviceAgent>(&cluster, graph.users[static_cast<size_t>(i)],
                                                    0, DeviceProfile::kWifi));
    devices.back()->SubscribeLvc(graph.videos[0]);
  }
  cluster.sim().RunFor(Seconds(3));

  // All 8 streams of the same subscription land on one host (curtailing
  // Pylon subscriptions, §3.2); total Pylon subscriptions for the topic: 1.
  int hosts_with_streams = 0;
  for (size_t i = 0; i < cluster.NumBrassHosts(); ++i) {
    if (cluster.brass_host(i).StreamCount() > 0) {
      ++hosts_with_streams;
      EXPECT_EQ(cluster.brass_host(i).StreamCount(), 8u);
    }
  }
  EXPECT_EQ(hosts_with_streams, 1);
  EXPECT_EQ(cluster.metrics().GetCounter("brass.pylon_subscribes").value(), 1);
}

TEST_F(BrassTest, LoadRoutingSpreadsStreams) {
  std::vector<std::unique_ptr<DeviceAgent>> devices;
  for (int i = 0; i < 12; ++i) {
    devices.push_back(std::make_unique<DeviceAgent>(cluster_.get(),
                                                    graph_.users[static_cast<size_t>(i)], 0,
                                                    DeviceProfile::kWifi));
    devices.back()->SubscribeLvc(graph_.videos[0]);
  }
  cluster_->sim().RunFor(Seconds(3));
  // Region 0 has 2 hosts; 12 streams must be spread across both.
  size_t with_streams = 0;
  for (size_t i = 0; i < cluster_->NumBrassHosts(); ++i) {
    if (cluster_->brass_host(i).region() == 0 && cluster_->brass_host(i).StreamCount() > 0) {
      ++with_streams;
      EXPECT_GE(cluster_->brass_host(i).StreamCount(), 4u);
    }
  }
  EXPECT_EQ(with_streams, 2u);
}

TEST_F(BrassTest, UnknownAppTerminatesStream) {
  DeviceAgent a(cluster_.get(), graph_.users[0], 0, DeviceProfile::kWifi);
  a.SubscribeRaw("NoSuchApp", "subscription { liveVideoComments(videoId: 1) { id } }");
  cluster_->sim().RunFor(Seconds(3));
  EXPECT_EQ(TotalStreams(), 0u);
  EXPECT_GE(cluster_->metrics().GetCounter("device.streams_terminated").value(), 1);
}

TEST_F(BrassTest, BadSubscriptionTerminatesStream) {
  DeviceAgent a(cluster_.get(), graph_.users[0], 0, DeviceProfile::kWifi);
  a.SubscribeRaw("LVC", "subscription { noSuchRootField { id } }");
  cluster_->sim().RunFor(Seconds(3));
  EXPECT_EQ(TotalStreams(), 0u);
}

TEST_F(BrassTest, PylonQuorumLossTerminatesAffectedStreams) {
  // Kill enough KV nodes that no subscribe can reach quorum.
  for (size_t i = 0; i < cluster_->pylon()->NumKvNodes(); ++i) {
    cluster_->pylon()->KvNodeAt(i)->SetAvailable(false);
  }
  DeviceAgent a(cluster_.get(), graph_.users[0], 0, DeviceProfile::kWifi);
  a.SubscribeLvc(graph_.videos[0]);
  cluster_->sim().RunFor(Seconds(8));
  // §4: the BRASS detects the quorum loss and reliably informs the client.
  EXPECT_GE(cluster_->metrics().GetCounter("brass.pylon_subscribe_failures").value(), 1);
  EXPECT_GE(cluster_->metrics().GetCounter("device.streams_terminated").value(), 1);
  EXPECT_EQ(TotalStreams(), 0u);
}

TEST_F(BrassTest, HostReviveAcceptsNewStreams) {
  DeviceAgent a(cluster_.get(), graph_.users[0], 0, DeviceProfile::kWifi);
  a.SubscribeLvc(graph_.videos[0]);
  cluster_->sim().RunFor(Seconds(3));

  // Crash every host in every region, then revive them.
  for (size_t i = 0; i < cluster_->NumBrassHosts(); ++i) {
    cluster_->brass_host(i).FailHost();
  }
  cluster_->sim().RunFor(Seconds(3));
  for (size_t i = 0; i < cluster_->NumBrassHosts(); ++i) {
    cluster_->brass_host(i).Revive();
  }
  DeviceAgent b(cluster_.get(), graph_.users[1], 0, DeviceProfile::kWifi);
  b.SubscribeLvc(graph_.videos[0]);
  cluster_->sim().RunFor(Seconds(5));
  EXPECT_GE(TotalStreams(), 1u);
}

TEST_F(BrassTest, EventsForUnsubscribedTopicsAreCounted) {
  // A publish arriving for a topic the host no longer holds is dropped and
  // counted (possible after unsubscribe races a publish).
  ClusterConfig config;
  config.seed = 81;
  config.brass_hosts_per_region = 1;
  BladerunnerCluster cluster(config, Topology::OneRegion());
  SocialGraphConfig gc;
  gc.num_users = 10;
  gc.num_videos = 1;
  SocialGraph graph = GenerateSocialGraph(cluster.tao(), cluster.sim().rng(), gc);
  cluster.sim().RunFor(Seconds(2));

  DeviceAgent a(&cluster, graph.users[0], 0, DeviceProfile::kWifi);
  uint64_t sid = a.SubscribeLvc(graph.videos[0]);
  cluster.sim().RunFor(Seconds(3));
  DeviceAgent poster(&cluster, graph.users[1], 0, DeviceProfile::kWifi);
  // Cancel and immediately post: the publish may overtake the unsubscribe.
  a.CancelStream(sid);
  poster.PostComment(graph.videos[0], "late", "en");
  cluster.sim().RunFor(Seconds(15));
  // Either the unsubscribe won (event never delivered to the host) or the
  // event was dropped at the host; in no case does a payload reach a.
  EXPECT_EQ(a.payloads_received(), 0u);
}

// ---- registration-time descriptor validation (docs/BURST.md) ----

TEST(AppDescriptorTest, RejectsDurableDegradeToPollContradiction) {
  // The motivating misconfiguration: durable deliveries bypass the
  // conflating delivery queue, so the shed-based degrade trigger can never
  // fire — this used to register fine and the degrade policy silently never
  // engaged.
  BrassAppDescriptor descriptor;
  descriptor.name = "BadTicker";
  descriptor.durable = true;
  descriptor.degrade_to_poll = true;
  std::string error;
  EXPECT_FALSE(ValidateBrassAppDescriptor(descriptor, &error));
  EXPECT_NE(error.find("app 'BadTicker'"), std::string::npos) << error;
  EXPECT_NE(error.find("degrade_to_poll"), std::string::npos) << error;
  // A null error pointer is allowed when the caller only wants the verdict.
  EXPECT_FALSE(ValidateBrassAppDescriptor(descriptor, nullptr));
}

TEST(AppDescriptorTest, RejectsDurableConflatableContradiction) {
  BrassAppDescriptor descriptor;
  descriptor.name = "BadFeed";
  descriptor.durable = true;
  descriptor.conflatable = true;
  std::string error;
  EXPECT_FALSE(ValidateBrassAppDescriptor(descriptor, &error));
  EXPECT_NE(error.find("conflatable"), std::string::npos) << error;
}

TEST(AppDescriptorTest, StockRegistryDescriptorsAllValidate) {
  // Every descriptor the standard registry ships — including the durable
  // ticker variant — must pass the registration gate the cluster enforces.
  for (bool durable_ticker : {false, true}) {
    AppsConfig apps;
    apps.ticker.durable = durable_ticker;
    for (const auto& [name, registration] : BuildStandardAppRegistry(apps)) {
      std::string error;
      EXPECT_TRUE(ValidateBrassAppDescriptor(registration.descriptor, &error))
          << name << ": " << error;
    }
  }
}

}  // namespace
}  // namespace bladerunner
