// Unit tests for the simulated network: connections (ordering, close/fail
// semantics, failure-detection delay), RPC (latency, unavailability,
// timeout), latency models, and topology.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/net/connection.h"
#include "src/net/latency.h"
#include "src/net/rpc.h"
#include "src/net/topology.h"
#include "src/sim/simulator.h"

namespace bladerunner {
namespace {

struct TextMessage : Message {
  explicit TextMessage(std::string t) : text(std::move(t)) {}
  std::string text;
};

class RecordingHandler : public ConnectionHandler {
 public:
  void OnMessage(ConnectionEnd& on, MessagePtr message) override {
    (void)on;
    received.push_back(std::static_pointer_cast<TextMessage>(message)->text);
  }
  void OnDisconnect(ConnectionEnd& on, DisconnectReason reason) override {
    (void)on;
    disconnects.push_back(reason);
  }
  std::vector<std::string> received;
  std::vector<DisconnectReason> disconnects;
};

TEST(ConnectionTest, DeliversMessagesAfterLatency) {
  Simulator sim;
  auto [a, b] = CreateConnection(&sim, LatencyModel::Fixed(10.0));
  RecordingHandler handler_b;
  b->set_handler(&handler_b);
  a->Send(std::make_shared<TextMessage>("hi"));
  sim.RunFor(Millis(9));
  EXPECT_TRUE(handler_b.received.empty());
  sim.RunFor(Millis(2));
  ASSERT_EQ(handler_b.received.size(), 1u);
  EXPECT_EQ(handler_b.received[0], "hi");
}

TEST(ConnectionTest, InOrderDeliveryDespiteJitter) {
  Simulator sim;
  LatencyModel jittery{10.0, 0.9, 1.0};  // heavy jitter
  auto [a, b] = CreateConnection(&sim, jittery);
  RecordingHandler handler_b;
  b->set_handler(&handler_b);
  for (int i = 0; i < 50; ++i) {
    a->Send(std::make_shared<TextMessage>(std::to_string(i)));
  }
  sim.Run();
  ASSERT_EQ(handler_b.received.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(handler_b.received[static_cast<size_t>(i)], std::to_string(i));
  }
}

TEST(ConnectionTest, BidirectionalTraffic) {
  Simulator sim;
  auto [a, b] = CreateConnection(&sim, LatencyModel::Fixed(5.0));
  RecordingHandler handler_a;
  RecordingHandler handler_b;
  a->set_handler(&handler_a);
  b->set_handler(&handler_b);
  a->Send(std::make_shared<TextMessage>("to-b"));
  b->Send(std::make_shared<TextMessage>("to-a"));
  sim.Run();
  ASSERT_EQ(handler_a.received.size(), 1u);
  ASSERT_EQ(handler_b.received.size(), 1u);
  EXPECT_EQ(handler_a.received[0], "to-a");
  EXPECT_EQ(handler_b.received[0], "to-b");
}

TEST(ConnectionTest, GracefulCloseDrainsInFlight) {
  Simulator sim;
  auto [a, b] = CreateConnection(&sim, LatencyModel::Fixed(10.0));
  RecordingHandler handler_b;
  b->set_handler(&handler_b);
  a->Send(std::make_shared<TextMessage>("last"));
  a->Close();
  sim.Run();
  ASSERT_EQ(handler_b.received.size(), 1u);  // the in-flight message arrived
  ASSERT_EQ(handler_b.disconnects.size(), 1u);
  EXPECT_EQ(handler_b.disconnects[0], DisconnectReason::kPeerClose);
}

TEST(ConnectionTest, AbruptFailureDropsInFlight) {
  Simulator sim;
  auto [a, b] = CreateConnection(&sim, LatencyModel::Fixed(10.0), Millis(100));
  RecordingHandler handler_b;
  b->set_handler(&handler_b);
  a->Send(std::make_shared<TextMessage>("lost"));
  a->Fail();
  sim.Run();
  EXPECT_TRUE(handler_b.received.empty());  // §4: drops are real
  ASSERT_EQ(handler_b.disconnects.size(), 1u);
  EXPECT_EQ(handler_b.disconnects[0], DisconnectReason::kPeerFailure);
}

TEST(ConnectionTest, FailureDetectionDelayApplies) {
  Simulator sim;
  auto [a, b] = CreateConnection(&sim, LatencyModel::Fixed(1.0), Millis(500));
  RecordingHandler handler_b;
  b->set_handler(&handler_b);
  a->Fail();
  sim.RunFor(Millis(499));
  EXPECT_TRUE(handler_b.disconnects.empty());
  sim.RunFor(Millis(2));
  EXPECT_EQ(handler_b.disconnects.size(), 1u);
}

TEST(ConnectionTest, SendAfterCloseIsDropped) {
  Simulator sim;
  auto [a, b] = CreateConnection(&sim, LatencyModel::Fixed(1.0));
  RecordingHandler handler_b;
  b->set_handler(&handler_b);
  a->Close();
  a->Send(std::make_shared<TextMessage>("too late"));
  b->Send(std::make_shared<TextMessage>("also too late"));
  sim.Run();
  EXPECT_TRUE(handler_b.received.empty());
}

TEST(ConnectionTest, OpenReflectsState) {
  Simulator sim;
  auto [a, b] = CreateConnection(&sim, LatencyModel::Fixed(1.0));
  EXPECT_TRUE(a->open());
  EXPECT_TRUE(b->open());
  a->Close();
  EXPECT_FALSE(a->open());
  EXPECT_FALSE(b->open());
}

TEST(ConnectionTest, UniqueConnectionIds) {
  Simulator sim;
  auto [a1, b1] = CreateConnection(&sim, LatencyModel::Fixed(1.0));
  auto [a2, b2] = CreateConnection(&sim, LatencyModel::Fixed(1.0));
  EXPECT_NE(a1->connection_id(), a2->connection_id());
  EXPECT_EQ(a1->connection_id(), b1->connection_id());
}

TEST(RpcTest, RoundTripLatency) {
  Simulator sim;
  RpcServer server;
  server.RegisterMethod("echo", [](MessagePtr request, RpcServer::Respond respond) {
    respond(request);
  });
  RpcChannel channel(&sim, &server, LatencyModel::Fixed(10.0));
  SimTime completed_at = 0;
  channel.Call("echo", std::make_shared<TextMessage>("x"),
               [&](RpcStatus status, MessagePtr response) {
                 EXPECT_EQ(status, RpcStatus::kOk);
                 EXPECT_EQ(std::static_pointer_cast<TextMessage>(response)->text, "x");
                 completed_at = sim.Now();
               });
  sim.Run();
  EXPECT_EQ(completed_at, Millis(20));  // 10ms each way
}

TEST(RpcTest, UnavailableServer) {
  Simulator sim;
  RpcServer server;
  server.RegisterMethod("m", [](MessagePtr, RpcServer::Respond respond) {
    respond(nullptr);
  });
  server.SetAvailable(false);
  RpcChannel channel(&sim, &server, LatencyModel::Fixed(5.0));
  RpcStatus got = RpcStatus::kOk;
  channel.Call("m", std::make_shared<TextMessage>(""), [&](RpcStatus status, MessagePtr) {
    got = status;
  });
  sim.Run();
  EXPECT_EQ(got, RpcStatus::kUnavailable);
}

TEST(RpcTest, TimeoutFiresWhenServerHangs) {
  Simulator sim;
  RpcServer server;
  server.RegisterMethod("hang", [](MessagePtr, RpcServer::Respond) {
    // never responds
  });
  RpcChannel channel(&sim, &server, LatencyModel::Fixed(5.0));
  RpcStatus got = RpcStatus::kOk;
  int calls = 0;
  channel.Call(
      "hang", std::make_shared<TextMessage>(""),
      [&](RpcStatus status, MessagePtr) {
        got = status;
        ++calls;
      },
      Seconds(1));
  sim.Run();
  EXPECT_EQ(got, RpcStatus::kTimeout);
  EXPECT_EQ(calls, 1);
}

TEST(RpcTest, CallbackInvokedExactlyOnceWhenResponseRacesTimeout) {
  Simulator sim;
  RpcServer server;
  server.RegisterMethod("slow", [&sim](MessagePtr request, RpcServer::Respond respond) {
    sim.Schedule(Millis(100), [request, respond]() { respond(request); });
  });
  RpcChannel channel(&sim, &server, LatencyModel::Fixed(5.0));
  int calls = 0;
  channel.Call(
      "slow", std::make_shared<TextMessage>(""),
      [&](RpcStatus, MessagePtr) { ++calls; }, Millis(105));
  sim.Run();
  EXPECT_EQ(calls, 1);
}

TEST(RpcTest, ServerGoingDownMidCallDropsResponse) {
  Simulator sim;
  RpcServer server;
  RpcServer::Respond saved;
  server.RegisterMethod("m", [&saved](MessagePtr, RpcServer::Respond respond) {
    saved = std::move(respond);
  });
  RpcChannel channel(&sim, &server, LatencyModel::Fixed(5.0));
  RpcStatus got = RpcStatus::kOk;
  channel.Call(
      "m", std::make_shared<TextMessage>(""),
      [&](RpcStatus status, MessagePtr) { got = status; }, Seconds(2));
  sim.RunFor(Millis(20));
  server.SetAvailable(false);
  saved(std::make_shared<TextMessage>("never-seen"));
  sim.Run();
  EXPECT_EQ(got, RpcStatus::kTimeout);  // only the timeout fires
}

TEST(RpcTest, ServerRestartingMidCallDropsStaleResponse) {
  // A server that goes down and comes back before its handler responds is a
  // new incarnation: the old incarnation's in-flight work must not leak out
  // as a response after the restart (regression for KV crash/recovery —
  // without the incarnation check the down-then-up window is invisible).
  Simulator sim;
  RpcServer server;
  RpcServer::Respond saved;
  server.RegisterMethod("m", [&saved](MessagePtr, RpcServer::Respond respond) {
    saved = std::move(respond);
  });
  RpcChannel channel(&sim, &server, LatencyModel::Fixed(5.0));
  RpcStatus got = RpcStatus::kOk;
  channel.Call(
      "m", std::make_shared<TextMessage>(""),
      [&](RpcStatus status, MessagePtr) { got = status; }, Seconds(2));
  sim.RunFor(Millis(20));
  server.SetAvailable(false);
  server.SetAvailable(true);  // restarted: available again, new incarnation
  saved(std::make_shared<TextMessage>("stale"));
  sim.Run();
  EXPECT_EQ(got, RpcStatus::kTimeout);  // the stale response never arrives
}

TEST(RpcTest, RetargetPointsNewCallsAtNewServer) {
  Simulator sim;
  RpcServer server1;
  RpcServer server2;
  int hits1 = 0;
  int hits2 = 0;
  server1.RegisterMethod("m", [&](MessagePtr, RpcServer::Respond respond) {
    ++hits1;
    respond(nullptr);
  });
  server2.RegisterMethod("m", [&](MessagePtr, RpcServer::Respond respond) {
    ++hits2;
    respond(nullptr);
  });
  RpcChannel channel(&sim, &server1, LatencyModel::Fixed(1.0));
  channel.Call("m", std::make_shared<TextMessage>(""), [](RpcStatus, MessagePtr) {});
  channel.Retarget(&server2);
  channel.Call("m", std::make_shared<TextMessage>(""), [](RpcStatus, MessagePtr) {});
  sim.Run();
  EXPECT_EQ(hits1, 1);
  EXPECT_EQ(hits2, 1);
}

TEST(LatencyTest, FixedModelIsExact) {
  Simulator sim;
  LatencyModel fixed = LatencyModel::Fixed(7.5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fixed.Sample(sim.rng()), MillisF(7.5));
  }
}

TEST(LatencyTest, SamplesRespectFloor) {
  Simulator sim;
  LatencyModel model{10.0, 1.0, 8.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(model.Sample(sim.rng()), MillisF(8.0));
  }
}

TEST(LatencyTest, MedianRoughlyMatches) {
  Simulator sim;
  LatencyModel model = LatencyModel::LastMile4g();
  std::vector<SimTime> samples;
  for (int i = 0; i < 10001; ++i) {
    samples.push_back(model.Sample(sim.rng()));
  }
  std::nth_element(samples.begin(), samples.begin() + 5000, samples.end());
  EXPECT_NEAR(ToMillis(samples[5000]), model.median_ms, model.median_ms * 0.1);
}

TEST(TopologyTest, ThreeRegionsShape) {
  Topology topo = Topology::ThreeRegions();
  EXPECT_EQ(topo.num_regions(), 3);
  EXPECT_EQ(topo.region_name(0), "americas");
}

TEST(TopologyTest, IntraVsCrossRegionLatency) {
  Topology topo = Topology::ThreeRegions();
  LatencyModel intra = topo.LinkModel(0, 0);
  LatencyModel cross = topo.LinkModel(0, 2);
  EXPECT_LT(intra.median_ms, 1.0);
  EXPECT_GT(cross.median_ms, 50.0);
}

TEST(TopologyTest, ProfileMixCoversAllProfiles) {
  Topology topo = Topology::ThreeRegions();
  Rng rng(1);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) {
    counts[static_cast<int>(topo.SampleProfile(rng))] += 1;
  }
  EXPECT_GT(counts[0], 0);  // wifi
  EXPECT_GT(counts[1], 0);  // 4g
  EXPECT_GT(counts[2], 0);  // 2g
  EXPECT_GT(counts[0], counts[2]);  // wifi outnumbers 2g
}

TEST(TopologyTest, MtbfOrderedByProfileQuality) {
  Topology topo = Topology::ThreeRegions();
  EXPECT_GT(topo.LastMileMtbf(DeviceProfile::kWifi), topo.LastMileMtbf(DeviceProfile::kMobile4g));
  EXPECT_GT(topo.LastMileMtbf(DeviceProfile::kMobile4g),
            topo.LastMileMtbf(DeviceProfile::kMobile2g));
}

}  // namespace
}  // namespace bladerunner
