// Tests for the per-host shared fetch pipeline (src/brass/fetch_pipeline):
// singleflight coalescing, the versioned payload cache and its
// version-observation invalidation, batched per-viewer privacy checks, the
// bypass path, and the stale-version regression — a lagging follower WAS
// must never get an old payload cached (and served) as current.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/brass/fetch_pipeline.h"
#include "src/net/rpc.h"
#include "src/pylon/cluster.h"
#include "src/tao/store.h"
#include "src/was/messages.h"
#include "src/was/resolvers.h"
#include "src/was/server.h"

namespace bladerunner {
namespace {

// WAS + pipeline both live in region 1; test objects are written through a
// region-0 leader shard, so region 1 reads them region-relatively (with
// genuine replication lag right after a write).
constexpr RegionId kHostRegion = 1;
constexpr RegionId kLeaderRegion = 0;

struct FetchResult {
  bool done = false;
  bool allowed = false;
  Value payload;
};

class FetchPipelineTest : public ::testing::Test {
 protected:
  FetchPipelineTest() : topology_(Topology::ThreeRegions()), sim_(91) {
    tao_ = std::make_unique<TaoStore>(&sim_, &topology_, TaoConfig{}, &metrics_);
    PylonConfig pylon_config;
    pylon_config.servers_per_region = 1;
    pylon_config.kv_nodes_per_region = 3;
    pylon_ = std::make_unique<PylonCluster>(&sim_, &topology_, pylon_config, &metrics_, &trace_);
    // Fast WAS processing so a fetch round trip (couple of ms) completes
    // well inside the cross-region TAO replication window (tens of ms) —
    // the stale-follower test issues several fetches during that window.
    WasConfig was_config;
    was_config.fetch_base_ms = 2.0;
    was_config.query_base_ms = 1.0;
    was_config.privacy_check_ms = 0.5;
    was_ = std::make_unique<WebAppServer>(&sim_, kHostRegion, tao_.get(), pylon_.get(),
                                          was_config, &metrics_, &trace_);
    InstallSocialSchema(*was_);
    channel_ = std::make_unique<RpcChannel>(&sim_, was_->rpc(), LatencyModel::Fixed(0.1));

    author_ = CreateUser(*tao_, "author", "en");
    viewer_a_ = CreateUser(*tao_, "viewer-a", "en");
    viewer_b_ = CreateUser(*tao_, "viewer-b", "en");
    viewer_c_ = CreateUser(*tao_, "viewer-c", "en");
    batch_viewers_ = {viewer_a_, viewer_b_};
    MakePipeline(FetchPipelineConfig{});
    sim_.RunFor(Seconds(2));  // replicate the users everywhere
  }

  void MakePipeline(FetchPipelineConfig config) {
    pipeline_ = std::make_unique<FetchPipeline>(
        &sim_, kHostRegion, channel_.get(), Seconds(5), config, &metrics_, &trace_,
        [this](const std::string&) { return batch_viewers_; });
  }

  // Allocates an object id owned by a region-0 leader shard.
  ObjectId AllocLeaderRegionId() {
    ObjectId id = tao_->NextId();
    while (tao_->LeaderRegionOf(id) != kLeaderRegion) {
      id = tao_->NextId();
    }
    return id;
  }

  // Writes (a new version of) a comment object; returns the stamped version.
  uint64_t PutComment(ObjectId id, const std::string& text) {
    Object object;
    object.id = id;
    object.otype = "comment";
    object.data.Set("text", text);
    object.data.Set("author", author_);
    uint64_t version = 0;
    tao_->PutObject(std::move(object), &version);
    return version;
  }

  Value Meta(ObjectId id, uint64_t version) {
    Value meta;
    meta.Set("id", id);
    meta.Set("author", author_);
    meta.Set("version", static_cast<int64_t>(version));
    return meta;
  }

  std::shared_ptr<FetchResult> Fetch(UserId viewer, const Value& metadata,
                                     bool bypass_cache = false) {
    auto result = std::make_shared<FetchResult>();
    FetchOptions options;
    options.viewer = viewer;
    options.bypass_cache = bypass_cache;
    pipeline_->Fetch("LVC", metadata, options, [result](bool allowed, Value payload) {
      result->done = true;
      result->allowed = allowed;
      result->payload = std::move(payload);
    });
    return result;
  }

  int64_t Counter(const std::string& name) { return metrics_.GetCounter(name).value(); }

  Topology topology_;
  Simulator sim_;
  MetricsRegistry metrics_;
  TraceCollector trace_;
  std::unique_ptr<TaoStore> tao_;
  std::unique_ptr<PylonCluster> pylon_;
  std::unique_ptr<WebAppServer> was_;
  std::unique_ptr<RpcChannel> channel_;
  std::unique_ptr<FetchPipeline> pipeline_;
  UserId author_ = 0;
  UserId viewer_a_ = 0;
  UserId viewer_b_ = 0;
  UserId viewer_c_ = 0;
  std::vector<UserId> batch_viewers_;
};

TEST_F(FetchPipelineTest, CoalescesSameInstantFetchesIntoOneRoundTrip) {
  ObjectId id = AllocLeaderRegionId();
  uint64_t version = PutComment(id, "hello");
  sim_.RunFor(Seconds(2));

  auto a = Fetch(viewer_a_, Meta(id, version));
  auto b = Fetch(viewer_b_, Meta(id, version));
  sim_.RunFor(Seconds(1));

  EXPECT_EQ(Counter("was.fetches"), 1);
  EXPECT_EQ(Counter("brass.fetch.coalesced"), 1);
  ASSERT_TRUE(a->done);
  ASSERT_TRUE(b->done);
  EXPECT_TRUE(a->allowed);
  EXPECT_TRUE(b->allowed);
  EXPECT_EQ(a->payload.Get("text").AsString(), "hello");
  EXPECT_EQ(b->payload.Get("text").AsString(), "hello");
}

TEST_F(FetchPipelineTest, ServesFollowersFromVersionedCache) {
  ObjectId id = AllocLeaderRegionId();
  uint64_t version = PutComment(id, "cached");
  sim_.RunFor(Seconds(2));

  auto a = Fetch(viewer_a_, Meta(id, version));
  sim_.RunFor(Seconds(1));
  ASSERT_TRUE(a->done);
  EXPECT_EQ(Counter("was.fetches"), 1);
  EXPECT_EQ(pipeline_->CacheSize(), 1u);

  // Viewer B arrives later; their decision was prefetched in the batched
  // RPC, so this is a pure cache hit: no new WAS round trip.
  auto b = Fetch(viewer_b_, Meta(id, version));
  sim_.RunFor(Seconds(1));
  ASSERT_TRUE(b->done);
  EXPECT_TRUE(b->allowed);
  EXPECT_EQ(b->payload.Get("text").AsString(), "cached");
  EXPECT_EQ(Counter("was.fetches"), 1);
  EXPECT_EQ(Counter("brass.fetch.cache_hits"), 1);
}

TEST_F(FetchPipelineTest, PerViewerPrivacyPreservedInBatchAndCache) {
  BlockUser(*tao_, author_, viewer_b_);
  ObjectId id = AllocLeaderRegionId();
  uint64_t version = PutComment(id, "private");
  sim_.RunFor(Seconds(2));

  auto a = Fetch(viewer_a_, Meta(id, version));
  auto b = Fetch(viewer_b_, Meta(id, version));
  sim_.RunFor(Seconds(1));
  ASSERT_TRUE(a->done);
  ASSERT_TRUE(b->done);
  EXPECT_TRUE(a->allowed);
  EXPECT_FALSE(b->allowed);
  EXPECT_TRUE(b->payload.is_null());

  // The cached denial is as authoritative as the WAS's answer: a repeat
  // fetch by the blocked viewer stays denied and payload-free.
  auto b2 = Fetch(viewer_b_, Meta(id, version));
  sim_.RunFor(Seconds(1));
  ASSERT_TRUE(b2->done);
  EXPECT_FALSE(b2->allowed);
  EXPECT_TRUE(b2->payload.is_null());
  EXPECT_EQ(Counter("was.fetches"), 1);
}

TEST_F(FetchPipelineTest, LateViewerGetsPrivacyOnlyTopUp) {
  batch_viewers_ = {viewer_a_};  // only A's decision is prefetched
  ObjectId id = AllocLeaderRegionId();
  uint64_t version = PutComment(id, "topup");
  sim_.RunFor(Seconds(2));

  auto a = Fetch(viewer_a_, Meta(id, version));
  sim_.RunFor(Seconds(1));
  ASSERT_TRUE(a->done);
  EXPECT_EQ(Counter("brass.fetch.rpcs"), 1);

  // C's decision is missing from the cache entry: a privacy-only RPC runs
  // (no payload re-fetch), then the cached payload is served.
  auto c = Fetch(viewer_c_, Meta(id, version));
  sim_.RunFor(Seconds(1));
  ASSERT_TRUE(c->done);
  EXPECT_TRUE(c->allowed);
  EXPECT_EQ(c->payload.Get("text").AsString(), "topup");
  EXPECT_EQ(Counter("brass.fetch.privacy_rpcs"), 1);
  EXPECT_EQ(Counter("brass.fetch.rpcs"), 1);
}

TEST_F(FetchPipelineTest, BypassCacheAlwaysReachesTheWas) {
  ObjectId id = AllocLeaderRegionId();
  uint64_t version = PutComment(id, "direct");
  sim_.RunFor(Seconds(2));

  auto a = Fetch(viewer_a_, Meta(id, version));
  sim_.RunFor(Seconds(1));
  ASSERT_TRUE(a->done);
  EXPECT_EQ(Counter("was.fetches"), 1);

  auto direct = Fetch(viewer_a_, Meta(id, version), /*bypass_cache=*/true);
  sim_.RunFor(Seconds(1));
  ASSERT_TRUE(direct->done);
  EXPECT_TRUE(direct->allowed);
  EXPECT_EQ(direct->payload.Get("text").AsString(), "direct");
  EXPECT_EQ(Counter("was.fetches"), 2);
  EXPECT_EQ(Counter("brass.fetch.bypass"), 1);
}

TEST_F(FetchPipelineTest, NewerObservedVersionInvalidatesCachedPayload) {
  ObjectId id = AllocLeaderRegionId();
  uint64_t v1 = PutComment(id, "v1");
  sim_.RunFor(Seconds(2));

  auto a = Fetch(viewer_a_, Meta(id, v1));
  sim_.RunFor(Seconds(1));
  ASSERT_TRUE(a->done);
  EXPECT_EQ(pipeline_->CacheSize(), 1u);

  // A Pylon event announcing version 2 of the object arrives at the host.
  pipeline_->ObserveEvent(Meta(id, v1 + 1));
  EXPECT_EQ(pipeline_->CacheSize(), 0u);
  EXPECT_EQ(Counter("brass.fetch.invalidations"), 1);
}

// The regression this pipeline must never introduce: after version v+1 of
// an object has been observed, the cached version v payload must not be
// delivered for a new fetch — including when the follower-region WAS,
// still mid-replication, answers the fresh fetch with version v again.
TEST_F(FetchPipelineTest, StaleFollowerReadIsDeliveredButNeverCachedAsCurrent) {
  ObjectId id = AllocLeaderRegionId();
  uint64_t v1 = PutComment(id, "old");
  sim_.RunFor(Seconds(2));

  // Version 1 is cached on the host.
  auto warm = Fetch(viewer_a_, Meta(id, v1));
  sim_.RunFor(Seconds(1));
  ASSERT_TRUE(warm->done);
  EXPECT_EQ(pipeline_->CacheSize(), 1u);

  // Version 2 is written through the region-0 leader and its Pylon event
  // reaches the host at once — long before TAO replication lands the new
  // version in this region.
  uint64_t v2 = PutComment(id, "new");
  ASSERT_EQ(v2, v1 + 1);
  pipeline_->ObserveEvent(Meta(id, v2));
  EXPECT_EQ(pipeline_->CacheSize(), 0u);  // v1 can no longer be served

  // A fetch for the v2 event during the replication lag: the cache must
  // miss (fresh WAS round trip), the follower WAS still serves v1 — which
  // is delivered, exactly as an unpipelined fetch would have — but the
  // stale payload must not be cached as the current version.
  int64_t rpcs_before = Counter("was.fetches");
  auto lagged = Fetch(viewer_a_, Meta(id, v2));
  sim_.RunFor(Millis(10));
  ASSERT_TRUE(lagged->done);
  EXPECT_TRUE(lagged->allowed);
  EXPECT_EQ(lagged->payload.Get("text").AsString(), "old");
  EXPECT_EQ(Counter("was.fetches"), rpcs_before + 1);
  EXPECT_EQ(Counter("brass.fetch.stale_returns"), 1);
  EXPECT_EQ(pipeline_->CacheSize(), 0u);

  // Another fetch during the lag must go to the WAS again — there is no
  // cached entry that could hand back the stale payload.
  auto lagged2 = Fetch(viewer_b_, Meta(id, v2));
  sim_.RunFor(Millis(10));
  ASSERT_TRUE(lagged2->done);
  EXPECT_EQ(lagged2->payload.Get("text").AsString(), "old");  // still mid-replication
  EXPECT_EQ(Counter("was.fetches"), rpcs_before + 2);
  EXPECT_EQ(pipeline_->CacheSize(), 0u);

  // Once replication lands, the fetch returns version 2 and only then is
  // the payload cached (and served to followers) as current.
  sim_.RunFor(Seconds(2));
  auto fresh = Fetch(viewer_a_, Meta(id, v2));
  sim_.RunFor(Seconds(1));
  ASSERT_TRUE(fresh->done);
  EXPECT_EQ(fresh->payload.Get("text").AsString(), "new");
  EXPECT_EQ(pipeline_->CacheSize(), 1u);

  int64_t rpcs_after = Counter("was.fetches");
  auto hit = Fetch(viewer_b_, Meta(id, v2));
  sim_.RunFor(Seconds(1));
  ASSERT_TRUE(hit->done);
  EXPECT_EQ(hit->payload.Get("text").AsString(), "new");
  EXPECT_EQ(Counter("was.fetches"), rpcs_after);
}

TEST_F(FetchPipelineTest, SupersededInFlightFetchIsNotCached) {
  ObjectId id = AllocLeaderRegionId();
  uint64_t v1 = PutComment(id, "v1");
  sim_.RunFor(Seconds(2));

  auto a = Fetch(viewer_a_, Meta(id, v1));
  // Before the flight's RPC returns, a newer version is observed.
  pipeline_->ObserveEvent(Meta(id, v1 + 1));
  sim_.RunFor(Seconds(1));
  ASSERT_TRUE(a->done);
  EXPECT_TRUE(a->allowed);  // the waiter still gets the v1 result
  EXPECT_EQ(pipeline_->CacheSize(), 0u);
}

TEST_F(FetchPipelineTest, LruEvictionBoundsTheCache) {
  FetchPipelineConfig config;
  config.cache_capacity = 2;
  MakePipeline(config);

  std::vector<ObjectId> ids;
  for (int i = 0; i < 3; ++i) {
    ObjectId id = AllocLeaderRegionId();
    PutComment(id, "entry");
    ids.push_back(id);
  }
  sim_.RunFor(Seconds(2));

  for (ObjectId id : ids) {
    auto r = Fetch(viewer_a_, Meta(id, 1));
    sim_.RunFor(Seconds(1));
    ASSERT_TRUE(r->done);
  }
  EXPECT_EQ(pipeline_->CacheSize(), 2u);
  EXPECT_EQ(Counter("brass.fetch.evictions"), 1);
}

TEST_F(FetchPipelineTest, DisabledPipelineStillFetchesCorrectly) {
  FetchPipelineConfig config;
  config.enabled = false;
  MakePipeline(config);

  ObjectId id = AllocLeaderRegionId();
  uint64_t version = PutComment(id, "plain");
  sim_.RunFor(Seconds(2));

  auto a = Fetch(viewer_a_, Meta(id, version));
  auto b = Fetch(viewer_b_, Meta(id, version));
  sim_.RunFor(Seconds(1));
  ASSERT_TRUE(a->done);
  ASSERT_TRUE(b->done);
  EXPECT_TRUE(a->allowed);
  EXPECT_EQ(b->payload.Get("text").AsString(), "plain");
  EXPECT_EQ(Counter("was.fetches"), 2);  // one round trip per stream
  EXPECT_EQ(pipeline_->CacheSize(), 0u);
}

TEST_F(FetchPipelineTest, ClearDropsCacheAndFlights) {
  ObjectId id = AllocLeaderRegionId();
  uint64_t version = PutComment(id, "gone");
  sim_.RunFor(Seconds(2));

  auto warm = Fetch(viewer_a_, Meta(id, version));
  sim_.RunFor(Seconds(1));
  ASSERT_TRUE(warm->done);
  EXPECT_EQ(pipeline_->CacheSize(), 1u);

  // A second object's fetch is mid-flight when the host clears (drain or
  // crash): its waiter must never fire afterwards.
  ObjectId id2 = AllocLeaderRegionId();
  uint64_t version2 = PutComment(id2, "never");
  sim_.RunFor(Seconds(2));
  auto inflight = Fetch(viewer_a_, Meta(id2, version2));
  pipeline_->Clear();
  sim_.RunFor(Seconds(1));
  EXPECT_EQ(pipeline_->CacheSize(), 0u);
  EXPECT_FALSE(inflight->done);
}

}  // namespace
}  // namespace bladerunner
