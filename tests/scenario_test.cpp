// Scenario-composition layer (src/workload/scenario.h): row schema sanity,
// the audits, and the seed-sweep determinism contract — for a fixed spec +
// seed the emitted JSON row is byte-identical across worker-thread counts
// and LP iteration order, given the same LP layout (the PR 8 contract).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/workload/scenario.h"

namespace bladerunner {
namespace {

// A small composed game-day touching most of the row: flash crowd +
// catastrophic POP failure over a durable ticker fleet.
ScenarioSpec SmallComposedSpec(uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "test_cell";
  spec.scale = "test";
  spec.seed = seed;
  spec.duration = Seconds(30);
  spec.drain = Seconds(20);
  spec.mix.viewers = 40;
  spec.mix.commenters = 20;
  spec.mix.ticker_devices = 30;
  spec.mix.ticker_channels = 5;
  spec.mix.ticker_ticks_per_channel = 20;
  spec.mix.ticker_gap = Millis(400);

  ScenarioPhase flash;
  flash.kind = ScenarioPhaseKind::kFlashCrowd;
  flash.at = Seconds(2);
  flash.duration = Seconds(10);
  flash.comments_per_sec = 15;
  spec.phases.push_back(flash);

  ScenarioPhase pop;
  pop.kind = ScenarioPhaseKind::kPopFailure;
  pop.at = Seconds(6);
  spec.phases.push_back(pop);
  return spec;
}

TEST(ScenarioTest, ComposedRunDeliversAndAuditsClean) {
  ScenarioRow row = RunScenario(SmallComposedSpec(7));
  EXPECT_EQ(row.scenario, "test_cell");
  EXPECT_EQ(row.fleet, 40 + 20 + 30 + 2);  // + the typing pair
  EXPECT_GT(row.delivered, 0);
  EXPECT_GT(row.delivery_p99_ms, 0.0);
  EXPECT_GE(row.delivery_p99_ms, row.delivery_p50_ms);
  // The durable tier must ride through the POP failure with zero loss.
  EXPECT_EQ(row.durable_published, 5 * 20);
  EXPECT_EQ(row.durable_lost, 0);
  EXPECT_EQ(row.durable_duplicates, 0);
  EXPECT_TRUE(row.durable_log_ok);
  EXPECT_TRUE(row.durability_ok);
  EXPECT_TRUE(row.livequery_ok);  // no live queries in the mix -> vacuous
  EXPECT_EQ(row.subs_lost, 0);
  EXPECT_GT(row.backbone_bytes, 0);
  EXPECT_GT(row.events, 0u);
}

TEST(ScenarioTest, RowJsonHasFullSchema) {
  ScenarioRow row = RunScenario(SmallComposedSpec(7));
  std::string json = row.ToJson();
  for (const char* key :
       {"\"scenario\":", "\"scale\":", "\"seed\":", "\"fleet\":", "\"delivered\":",
        "\"delivery_p50_ms\":", "\"delivery_p99_ms\":", "\"shed_fraction\":",
        "\"conflated_fraction\":", "\"degraded_fraction\":", "\"degrade_signals\":",
        "\"durable_published\":", "\"durable_lost\":", "\"durable_duplicates\":",
        "\"durable_log_ok\":", "\"durability_ok\":", "\"livequery_ok\":",
        "\"backbone_bytes\":", "\"subs_audited\":", "\"subs_lost\":", "\"events\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing from " << json;
  }
  EXPECT_EQ(json.find('\n'), std::string::npos) << "row must be one line";
}

// The seed sweep: same spec + seed => byte-identical rows across thread
// counts and LP iteration order, for the same LP layout (16 device-group
// LPs). Threads only change wall-clock; reverse_lp_order is the kernel's
// own determinism audit knob.
TEST(ScenarioTest, RowsByteIdenticalAcrossThreadsAndLpOrder) {
  for (uint64_t seed : {3u, 11u}) {
    ScenarioSpec spec = SmallComposedSpec(seed);

    ClusterParallelConfig one_thread;
    one_thread.threads = 1;
    one_thread.device_lp_groups = 16;
    std::string base = RunScenario(spec, one_thread).ToJson();

    ClusterParallelConfig four_threads;
    four_threads.threads = 4;
    four_threads.device_lp_groups = 16;
    EXPECT_EQ(RunScenario(spec, four_threads).ToJson(), base) << "seed " << seed;

    ClusterParallelConfig reversed = four_threads;
    reversed.reverse_lp_order = true;
    EXPECT_EQ(RunScenario(spec, reversed).ToJson(), base) << "seed " << seed;
  }
}

TEST(ScenarioTest, DifferentSeedsDiverge) {
  // The seed must actually reach the workload: two seeds, two rows.
  EXPECT_NE(RunScenario(SmallComposedSpec(3)).ToJson(),
            RunScenario(SmallComposedSpec(11)).ToJson());
}

}  // namespace
}  // namespace bladerunner
