// Edge placement (docs/BURST.md "Placement"): the POP-side payload cache's
// versioned invalidation semantics, and the end-to-end placement dataflow —
// envelopes at the host, coarse filter + conflation + cache at the POP,
// fetch and privacy regional — including the mid-stream fallback to fully
// regional processing when the capable POP fails.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/burst/pop_cache.h"
#include "src/core/cluster.h"
#include "src/core/device.h"
#include "src/was/resolvers.h"
#include "src/workload/social_gen.h"

namespace bladerunner {
namespace {

Value Payload(const std::string& text) {
  Value v;
  v.Set("text", text);
  return v;
}

// ---- PopPayloadCache: the fetch_pipeline stale-read rule at the edge ----

TEST(PopPayloadCacheTest, StaleFillIsRejectedAndNeverCached) {
  PopPayloadCache cache(4);
  // An envelope for version 2 crossed before the version-1 fill landed.
  cache.ObserveVersion("LVC", 7, 2);
  EXPECT_FALSE(cache.Put("LVC", 7, 1, Payload("old"), {{100, true}}));
  // The waiters were still served (a stale follower read is a valid read),
  // but no later stream can be handed the superseded payload.
  EXPECT_EQ(cache.Get("LVC", 7, 1), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stale_rejects(), 1u);
}

TEST(PopPayloadCacheTest, VersionBumpInvalidatesCachedOlderEntry) {
  PopPayloadCache cache(4);
  ASSERT_TRUE(cache.Put("LVC", 7, 1, Payload("v1"), {{100, true}}));
  ASSERT_NE(cache.Get("LVC", 7, 1), nullptr);
  // The next event envelope for the object carries version 2: the v1 entry
  // must drop immediately, not linger until LRU pressure.
  EXPECT_EQ(cache.ObserveVersion("LVC", 7, 2), 1u);
  EXPECT_EQ(cache.Get("LVC", 7, 1), nullptr);
  EXPECT_EQ(cache.version_invalidations(), 1u);
  // The newer version caches normally afterwards.
  EXPECT_TRUE(cache.Put("LVC", 7, 2, Payload("v2"), {{100, true}}));
  ASSERT_NE(cache.Get("LVC", 7, 2), nullptr);
}

TEST(PopPayloadCacheTest, PutBelowWatermarkFromLaterFillIsRejected) {
  PopPayloadCache cache(4);
  ASSERT_TRUE(cache.Put("LVC", 7, 3, Payload("v3"), {{100, true}}));
  // A straggler fill for an older version arrives after the newer one.
  EXPECT_FALSE(cache.Put("LVC", 7, 2, Payload("v2"), {{100, true}}));
  EXPECT_EQ(cache.Get("LVC", 7, 2), nullptr);
  ASSERT_NE(cache.Get("LVC", 7, 3), nullptr);
}

TEST(PopPayloadCacheTest, BoundedByLruEviction) {
  PopPayloadCache cache(2);
  ASSERT_TRUE(cache.Put("LVC", 1, 1, Payload("a"), {}));
  ASSERT_TRUE(cache.Put("LVC", 2, 1, Payload("b"), {}));
  // Touch object 1 so object 2 is the LRU victim.
  ASSERT_NE(cache.Get("LVC", 1, 1), nullptr);
  ASSERT_TRUE(cache.Put("LVC", 3, 1, Payload("c"), {}));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.lru_evictions(), 1u);
  EXPECT_EQ(cache.Get("LVC", 2, 1), nullptr);
  EXPECT_NE(cache.Get("LVC", 1, 1), nullptr);
  EXPECT_NE(cache.Get("LVC", 3, 1), nullptr);
}

TEST(PopPayloadCacheTest, AddDecisionsMergesForLaterViewers) {
  PopPayloadCache cache(4);
  ASSERT_TRUE(cache.Put("LVC", 7, 1, Payload("v1"), {{100, true}}));
  cache.AddDecisions("LVC", 7, 1, {{101, false}});
  const PopPayloadCache::Entry* entry = cache.Get("LVC", 7, 1);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->decisions.at(100));
  EXPECT_FALSE(entry->decisions.at(101));
}

TEST(PopPayloadCacheTest, ZeroCapacityDisablesCaching) {
  PopPayloadCache cache(0);
  EXPECT_FALSE(cache.Put("LVC", 7, 1, Payload("v1"), {{100, true}}));
  EXPECT_EQ(cache.size(), 0u);
}

// ---- end-to-end placement through the full stack ----

class PopPlacementTest : public ::testing::Test {
 protected:
  void Build(BrassPlacement placement, bool placement_enabled, double min_quality = 0.0) {
    ClusterConfig config;
    config.seed = 4242;
    config.burst.pop_placement_enabled = placement_enabled;
    config.apps.lvc.placement = placement;
    // Deterministic delivery: no quality / friend / language gate, and a
    // short pacing gap so a single RunFor covers several push slots.
    config.apps.lvc.min_quality = min_quality;
    config.apps.lvc.non_friend_quality = 0.0;
    config.apps.lvc.filter_language = false;
    config.apps.lvc.push_interval = Seconds(1);
    cluster_ = std::make_unique<BladerunnerCluster>(config);
    SocialGraphConfig graph_config;
    graph_config.num_users = 30;
    graph_config.num_videos = 1;
    graph_ = GenerateSocialGraph(cluster_->tao(), cluster_->sim().rng(), graph_config);
    cluster_->sim().RunFor(Seconds(2));
  }

  std::unique_ptr<DeviceAgent> MakeDevice(size_t user_index) {
    return std::make_unique<DeviceAgent>(cluster_.get(), graph_.users[user_index], 0,
                                         DeviceProfile::kWifi);
  }

  int64_t Counter(const std::string& name) {
    return cluster_->metrics().GetCounter(name).value();
  }

  std::unique_ptr<BladerunnerCluster> cluster_;
  SocialGraph graph_;
};

TEST_F(PopPlacementTest, PopPlacedStreamDeliversThroughTheEdge) {
  Build(BrassPlacement::kPopFilterConflate, /*placement_enabled=*/true);
  auto viewer = MakeDevice(0);
  auto poster = MakeDevice(1);
  ObjectId video = graph_.videos[0];
  viewer->SubscribeLvc(video);
  cluster_->sim().RunFor(Seconds(3));

  poster->PostComment(video, "hello", "en");
  cluster_->sim().RunFor(Seconds(15));

  // The host sent envelopes, never payloads; the POP resolved and pushed.
  EXPECT_GE(Counter("brass.envelopes"), 1);
  EXPECT_GE(Counter("burst.pop_envelopes"), 1);
  EXPECT_GE(Counter("burst.pop_deliveries"), 1);
  EXPECT_GE(Counter("burst.pop_fetches"), 1);
  EXPECT_GE(Counter("brass.pop_fetch_serves"), 1);
  EXPECT_EQ(Counter("brass.deliveries"), 0);
  EXPECT_GE(viewer->payloads_received(), 1u);
}

TEST_F(PopPlacementTest, PlacementKnobsOffKeepsEverythingRegional) {
  Build(BrassPlacement::kRegional, /*placement_enabled=*/false);
  auto viewer = MakeDevice(0);
  auto poster = MakeDevice(1);
  ObjectId video = graph_.videos[0];
  viewer->SubscribeLvc(video);
  cluster_->sim().RunFor(Seconds(3));

  poster->PostComment(video, "hello", "en");
  cluster_->sim().RunFor(Seconds(15));

  EXPECT_GE(viewer->payloads_received(), 1u);
  EXPECT_GE(Counter("brass.deliveries"), 1);
  EXPECT_EQ(Counter("brass.envelopes"), 0);
  EXPECT_EQ(Counter("burst.pop_envelopes"), 0);
  EXPECT_EQ(Counter("burst.pop_deliveries"), 0);
}

// The app asks for POP placement but the deployment has not enabled POPs:
// the POP clears the header stamp at Subscribe and the host runs regional.
TEST_F(PopPlacementTest, AppPolicyWithoutCapablePopsFallsBackRegional) {
  Build(BrassPlacement::kPopFilterConflate, /*placement_enabled=*/false);
  auto viewer = MakeDevice(0);
  auto poster = MakeDevice(1);
  ObjectId video = graph_.videos[0];
  viewer->SubscribeLvc(video);
  cluster_->sim().RunFor(Seconds(3));

  poster->PostComment(video, "hello", "en");
  cluster_->sim().RunFor(Seconds(15));

  EXPECT_GE(viewer->payloads_received(), 1u);
  EXPECT_GE(Counter("brass.deliveries"), 1);
  EXPECT_EQ(Counter("brass.envelopes"), 0);
}

TEST_F(PopPlacementTest, CoarseFilterDropsLowQualityAtThePop) {
  // min_quality above the whole quality range: every comment survives the
  // regional residual (it is viewer-independent-clean) but dies at the POP.
  Build(BrassPlacement::kPopFilterConflate, /*placement_enabled=*/true,
        /*min_quality=*/2.0);
  auto viewer = MakeDevice(0);
  auto poster = MakeDevice(1);
  ObjectId video = graph_.videos[0];
  viewer->SubscribeLvc(video);
  cluster_->sim().RunFor(Seconds(3));

  for (int i = 0; i < 5; ++i) {
    poster->PostComment(video, "spam", "en");
    cluster_->sim().RunFor(Seconds(1));
  }
  cluster_->sim().RunFor(Seconds(15));

  EXPECT_GE(Counter("burst.pop_filtered"), 1);
  EXPECT_EQ(Counter("burst.pop_deliveries"), 0);
  EXPECT_EQ(viewer->payloads_received(), 0u);
  // The filtered events never triggered a regional payload fetch.
  EXPECT_EQ(Counter("burst.pop_fetches"), 0);
}

TEST_F(PopPlacementTest, EditStormConflatesAtThePopNewestVersionWins) {
  Build(BrassPlacement::kPopFilterConflate, /*placement_enabled=*/true);
  auto viewer = MakeDevice(0);
  auto poster = MakeDevice(1);
  ObjectId video = graph_.videos[0];
  viewer->SubscribeLvc(video);
  cluster_->sim().RunFor(Seconds(3));

  ObjectId comment = 0;
  poster->Mutate("mutation { postComment(video: " + std::to_string(video) +
                     ", text: \"hot\", language: \"en\") { id } }",
                 [&comment](bool ok, Value data) {
                   if (ok) {
                     comment = data.Get("postComment").Get("id").AsInt(0);
                   }
                 });
  cluster_->sim().RunFor(Seconds(10));
  ASSERT_NE(comment, 0);

  // Burst of edits inside one pacing gap: the POP's per-stream queue must
  // conflate them down (newest version supersedes) instead of queueing all.
  for (int i = 0; i < 10; ++i) {
    poster->EditComment(comment, "edit " + std::to_string(i));
    cluster_->sim().RunFor(Millis(100));
  }
  cluster_->sim().RunFor(Seconds(20));

  EXPECT_GE(Counter("burst.pop_conflated"), 1);
  // Pacing held: far fewer pushes than events.
  EXPECT_LT(Counter("burst.pop_deliveries"), Counter("burst.pop_envelopes"));
  EXPECT_GE(viewer->payloads_received(), 2u);  // original + a conflated edit
}

TEST_F(PopPlacementTest, PopFailureMidStreamFallsBackToRegional) {
  Build(BrassPlacement::kPopFilterConflate, /*placement_enabled=*/true);
  // Region 0 has two POPs; devices attach to the first alive one. Make the
  // second one placement-incapable so the failover exercises the fallback.
  ASSERT_GE(cluster_->NumPops(), 2u);
  cluster_->pop(1).set_placement_enabled(false);

  auto viewer = MakeDevice(0);
  auto poster = MakeDevice(1);
  ObjectId video = graph_.videos[0];
  viewer->SubscribeLvc(video);
  cluster_->sim().RunFor(Seconds(3));

  poster->PostComment(video, "before failover", "en");
  cluster_->sim().RunFor(Seconds(15));
  ASSERT_GE(Counter("burst.pop_deliveries"), 1);
  ASSERT_EQ(Counter("brass.deliveries"), 0);
  uint64_t delivered_before = viewer->payloads_received();
  int64_t pop_deliveries_before = Counter("burst.pop_deliveries");

  // The capable POP dies mid-stream. The device reconnects through the
  // incapable one, which clears the placement stamp on the resubscribe, so
  // the host resumes fully regional processing for the same stream.
  cluster_->pop(0).FailPop();
  cluster_->sim().RunFor(Seconds(10));

  poster->PostComment(video, "after failover", "en");
  cluster_->sim().RunFor(Seconds(15));

  EXPECT_GT(viewer->payloads_received(), delivered_before);
  EXPECT_GE(Counter("brass.deliveries"), 1);  // regional path took over
  EXPECT_EQ(Counter("burst.pop_deliveries"), pop_deliveries_before);
}

}  // namespace
}  // namespace bladerunner
