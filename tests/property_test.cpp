// Property-style parameterized sweeps (TEST_P): invariants that must hold
// across seeds, latency models, distribution parameters, and pool sizes.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "src/core/cluster.h"
#include "src/core/device.h"
#include "src/net/connection.h"
#include "src/pylon/rendezvous.h"
#include "src/sim/histogram.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/was/resolvers.h"
#include "src/workload/lifetimes.h"
#include "src/workload/popularity.h"
#include "src/workload/social_gen.h"

namespace bladerunner {
namespace {

// ---- histogram quantiles track exact quantiles across distributions ----

enum class Dist { kUniform, kExponential, kLogNormal, kBimodal };

class HistogramAccuracy : public ::testing::TestWithParam<Dist> {};

TEST_P(HistogramAccuracy, QuantilesWithinRelativeError) {
  Rng rng(123);
  Histogram h;
  std::vector<double> samples;
  const int n = 30000;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) {
    double v = 0.0;
    switch (GetParam()) {
      case Dist::kUniform:
        v = rng.Uniform(10.0, 100000.0);
        break;
      case Dist::kExponential:
        v = rng.Exponential(5000.0) + 2.0;
        break;
      case Dist::kLogNormal:
        v = rng.LogNormal(800.0, 1.0);
        break;
      case Dist::kBimodal:
        v = rng.Bernoulli(0.5) ? rng.LogNormal(50.0, 0.2) : rng.LogNormal(50000.0, 0.2);
        break;
    }
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.10, 0.50, 0.90, 0.99}) {
    double exact = samples[static_cast<size_t>(q * (n - 1))];
    double estimated = h.Quantile(q);
    EXPECT_NEAR(estimated, exact, exact * 0.06)
        << "q=" << q << " dist=" << static_cast<int>(GetParam());
  }
  EXPECT_EQ(h.count(), static_cast<uint64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Distributions, HistogramAccuracy,
                         ::testing::Values(Dist::kUniform, Dist::kExponential, Dist::kLogNormal,
                                           Dist::kBimodal));

// ---- connections deliver in order under any latency model ----

class ConnectionOrdering : public ::testing::TestWithParam<LatencyModel> {};

namespace {
struct SeqMessage : Message {
  explicit SeqMessage(int i) : index(i) {}
  int index;
};

class SeqRecorder : public ConnectionHandler {
 public:
  void OnMessage(ConnectionEnd&, MessagePtr message) override {
    received.push_back(std::static_pointer_cast<SeqMessage>(message)->index);
  }
  void OnDisconnect(ConnectionEnd&, DisconnectReason) override {}
  std::vector<int> received;
};
}  // namespace

TEST_P(ConnectionOrdering, MessagesNeverReorder) {
  Simulator sim(99);
  auto [a, b] = CreateConnection(&sim, GetParam());
  SeqRecorder recorder;
  b->set_handler(&recorder);
  const int kMessages = 300;
  for (int i = 0; i < kMessages; ++i) {
    // Interleave sends with time advancing, so latencies overlap heavily.
    a->Send(std::make_shared<SeqMessage>(i));
    sim.RunFor(Micros(sim.rng().UniformInt(0, 2000)));
  }
  sim.Run();
  ASSERT_EQ(recorder.received.size(), static_cast<size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(recorder.received[static_cast<size_t>(i)], i);
  }
}

INSTANTIATE_TEST_SUITE_P(LatencyModels, ConnectionOrdering,
                         ::testing::Values(LatencyModel::Fixed(1.0), LatencyModel::IntraRegion(),
                                           LatencyModel::CrossRegion(150.0),
                                           LatencyModel::LastMile2g(),
                                           LatencyModel{10.0, 1.2, 0.5}));

// ---- lifetime model: bucket shares follow any configured mixture ----

class LifetimeMixture : public ::testing::TestWithParam<LifetimeConfig> {};

TEST_P(LifetimeMixture, BiasedSharesMatchConfig) {
  Rng rng(7);
  StreamLifetimeModel model(GetParam());
  const int n = 60000;
  std::vector<int> buckets(4, 0);
  for (int i = 0; i < n; ++i) {
    buckets[StreamLifetimeModel::BucketOf(model.Sample(rng))] += 1;
  }
  const LifetimeConfig& config = GetParam();
  EXPECT_NEAR(static_cast<double>(buckets[0]) / n, config.p_under_15m, 0.01);
  EXPECT_NEAR(static_cast<double>(buckets[1]) / n, config.p_15m_to_1h, 0.01);
  EXPECT_NEAR(static_cast<double>(buckets[2]) / n, config.p_1h_to_24h, 0.01);
}

TEST_P(LifetimeMixture, SnapshotOfUnbiasedStreamsReproducesBiasedShares) {
  // The core Table 2 property: generate sessions from the unbiased
  // distribution, observe the length-biased shares at snapshots.
  Rng rng(8);
  StreamLifetimeModel model(GetParam());
  struct Session {
    SimTime start, end;
  };
  std::vector<Session> sessions;
  SimTime t = 0;
  while (t < Days(5)) {
    t += SecondsF(rng.Exponential(0.2));
    SimTime l = model.SampleUnbiased(rng);
    sessions.push_back({t, t + l});
  }
  std::vector<int64_t> buckets(4, 0);
  int64_t total = 0;
  for (SimTime sample = Days(1); sample < Days(4); sample += Hours(3)) {
    for (const Session& s : sessions) {
      if (s.start <= sample && sample < s.end) {
        buckets[StreamLifetimeModel::BucketOf(s.end - s.start)] += 1;
        ++total;
      }
    }
  }
  const LifetimeConfig& config = GetParam();
  ASSERT_GT(total, 1000);
  EXPECT_NEAR(static_cast<double>(buckets[0]) / total, config.p_under_15m, 0.05);
  EXPECT_NEAR(static_cast<double>(buckets[1]) / total, config.p_15m_to_1h, 0.05);
  EXPECT_NEAR(static_cast<double>(buckets[2]) / total, config.p_1h_to_24h, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Mixtures, LifetimeMixture,
                         ::testing::Values(LifetimeConfig{},                    // paper's Table 2
                                           LifetimeConfig{0.60, 0.20, 0.15},    // shorter-lived
                                           LifetimeConfig{0.25, 0.25, 0.40}));  // longer-lived

// ---- popularity model across configurations ----

class PopularityShares : public ::testing::TestWithParam<PopularityConfig> {};

TEST_P(PopularityShares, BucketSharesMatchConfig) {
  Rng rng(9);
  AreaPopularityModel model(GetParam());
  const int n = 300000;
  std::vector<int64_t> buckets(6, 0);
  for (int i = 0; i < n; ++i) {
    buckets[AreaPopularityModel::BucketOf(model.SampleDailyUpdates(rng))] += 1;
  }
  const PopularityConfig& config = GetParam();
  EXPECT_NEAR(static_cast<double>(buckets[0]) / n, config.p_zero, 0.01);
  EXPECT_NEAR(static_cast<double>(buckets[1]) / n, config.p_low, 0.01);
  // The tail mass ends up beyond 1M (buckets 4+5).
  double tail = 1.0 - config.p_zero - config.p_low - config.p_mid;
  EXPECT_NEAR(static_cast<double>(buckets[4] + buckets[5]) / n, tail, 0.005);
}

INSTANTIATE_TEST_SUITE_P(Configs, PopularityShares,
                         ::testing::Values(PopularityConfig{},  // paper's Table 1
                                           PopularityConfig{0.60, 0.35, 0.04},
                                           PopularityConfig{0.90, 0.09, 0.005}));

// ---- rendezvous hashing balance & stability across pool sizes ----

class RendezvousPools : public ::testing::TestWithParam<int> {};

TEST_P(RendezvousPools, BalancedWithinTwentyPercent) {
  int pool = GetParam();
  std::vector<uint64_t> nodes;
  for (uint64_t i = 1; i <= static_cast<uint64_t>(pool); ++i) {
    nodes.push_back(i * 7919);  // non-contiguous ids
  }
  std::vector<int> hits(static_cast<size_t>(pool), 0);
  const int kKeys = 20000;
  for (int i = 0; i < kKeys; ++i) {
    uint64_t chosen = RendezvousTopK("/k/" + std::to_string(i), nodes, 1).front();
    for (size_t j = 0; j < nodes.size(); ++j) {
      if (nodes[j] == chosen) {
        hits[j] += 1;
      }
    }
  }
  double expected = static_cast<double>(kKeys) / pool;
  for (int h : hits) {
    EXPECT_NEAR(h, expected, expected * 0.2);
  }
}

TEST_P(RendezvousPools, TopKSetsAreDistinctNodes) {
  int pool = GetParam();
  std::vector<uint64_t> nodes;
  for (uint64_t i = 1; i <= static_cast<uint64_t>(pool); ++i) {
    nodes.push_back(i);
  }
  for (int i = 0; i < 200; ++i) {
    auto top = RendezvousTopK("/t/" + std::to_string(i), nodes, 3);
    std::set<uint64_t> unique(top.begin(), top.end());
    EXPECT_EQ(unique.size(), top.size());
  }
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, RendezvousPools, ::testing::Values(3, 8, 32, 128));

// ---- Zipf skew increases with the exponent ----

class ZipfSkew : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSkew, RankZeroShareGrowsWithS) {
  Rng rng(10);
  const int64_t n = 500;
  const int kDraws = 50000;
  int rank0 = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Zipf(n, GetParam()) == 0) {
      ++rank0;
    }
  }
  // Harmonic-number approximation for P(rank 0) = 1 / H_{n,s}.
  double h = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    h += 1.0 / std::pow(static_cast<double>(k), GetParam());
  }
  EXPECT_NEAR(static_cast<double>(rank0) / kDraws, 1.0 / h, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfSkew, ::testing::Values(0.8, 1.0, 1.2, 1.5));

// ---- whole-stack invariants across seeds ----

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweep, EndToEndInvariantsHold) {
  ClusterConfig config;
  config.seed = GetParam();
  BladerunnerCluster cluster(config);
  SocialGraphConfig graph_config;
  graph_config.num_users = 30;
  graph_config.num_videos = 2;
  graph_config.num_threads = 6;
  SocialGraph graph = GenerateSocialGraph(cluster.tao(), cluster.sim().rng(), graph_config);
  cluster.sim().RunFor(Seconds(2));

  std::vector<std::unique_ptr<DeviceAgent>> devices;
  for (int i = 0; i < 8; ++i) {
    RegionId region = cluster.topology().SampleRegion(cluster.sim().rng());
    DeviceProfile profile = cluster.topology().SampleProfile(cluster.sim().rng());
    devices.push_back(std::make_unique<DeviceAgent>(&cluster,
                                                    graph.users[static_cast<size_t>(i)], region,
                                                    profile));
    devices.back()->SubscribeLvc(graph.videos[0]);
  }
  const auto& members = graph.thread_members[graph.threads[0]];
  DeviceAgent receiver(&cluster, members[0], 0, DeviceProfile::kWifi);
  DeviceAgent sender(&cluster, members[1], 0, DeviceProfile::kWifi);
  receiver.SubscribeMailbox(0);
  cluster.sim().RunFor(Seconds(4));

  for (int s = 0; s < 20; ++s) {
    devices[0]->PostComment(graph.videos[0], "c", "en");
    if (s % 4 == 0) {
      sender.SendMessage(graph.threads[0], "m");
    }
    if (s == 10) {
      receiver.burst().SimulateConnectionDrop();
    }
    cluster.sim().RunFor(Seconds(1));
  }
  cluster.sim().RunFor(Seconds(20));

  MetricsRegistry& m = cluster.metrics();
  // Accounting invariants.
  EXPECT_EQ(m.GetCounter("brass.decisions").value(),
            m.GetCounter("brass.decisions_positive").value() +
                m.GetCounter("brass.filtered").value());
  EXPECT_GE(m.GetCounter("brass.decisions").value(), m.GetCounter("brass.deliveries").value());
  // Reliable Messenger delivered everything in order despite the drop.
  EXPECT_EQ(receiver.messenger_order_violations(), 0u);
  EXPECT_EQ(receiver.last_messenger_seq(), 5u);
  // Stream bookkeeping is consistent: every device stream is served by
  // exactly one host stream (plus possibly a detached remnant mid-GC).
  size_t device_streams = 0;
  for (auto& device : devices) {
    device_streams += device->burst().ActiveStreamCount();
  }
  device_streams += receiver.burst().ActiveStreamCount();
  size_t host_streams = 0;
  for (size_t i = 0; i < cluster.NumBrassHosts(); ++i) {
    host_streams += cluster.brass_host(i).StreamCount();
  }
  EXPECT_GE(host_streams, device_streams);
  EXPECT_LE(host_streams, device_streams + 2);
}

TEST_P(SeedSweep, IdenticalSeedsReplayIdentically) {
  auto run = [&](uint64_t seed) {
    ClusterConfig config;
    config.seed = seed;
    BladerunnerCluster cluster(config);
    UserId u1 = CreateUser(cluster.tao(), "a", "en");
    UserId u2 = CreateUser(cluster.tao(), "b", "en");
    MakeFriends(cluster.tao(), u1, u2);
    ObjectId video = CreateVideo(cluster.tao(), u1, "v");
    cluster.sim().RunFor(Seconds(2));
    DeviceAgent viewer(&cluster, u1, 0, DeviceProfile::kMobile4g);
    DeviceAgent poster(&cluster, u2, 1, DeviceProfile::kWifi);
    viewer.SubscribeLvc(video);
    cluster.sim().RunFor(Seconds(3));
    for (int i = 0; i < 6; ++i) {
      poster.PostComment(video, "c", "en");
      cluster.sim().RunFor(Seconds(2));
    }
    cluster.sim().RunFor(Seconds(15));
    return std::make_tuple(viewer.payloads_received(), cluster.sim().events_executed(),
                           cluster.metrics().GetCounter("brass.decisions").value());
  };
  EXPECT_EQ(run(GetParam()), run(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(1, 17, 4242, 987654321));

// ---- partitioned kernel: worker-thread count never affects results ----
//
// The whole end-to-end stack (devices on group LPs, backend on the global
// LP, cross-LP connection handshakes, per-LP metric sinks, per-LP trace
// stores) must produce an identical digest whether rounds run on 1, 2, or
// 8 worker threads. Threads are pure wall-clock; the LP layout and seed
// alone determine the schedule.
class ParallelSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelSeedSweep, DigestIdenticalAcrossThreadCounts) {
  auto run = [&](int threads) {
    ClusterConfig config;
    config.seed = GetParam();
    config.parallel.threads = threads;
    config.parallel.device_lp_groups = 4;
    BladerunnerCluster cluster(config);
    UserId u1 = CreateUser(cluster.tao(), "a", "en");
    UserId u2 = CreateUser(cluster.tao(), "b", "en");
    MakeFriends(cluster.tao(), u1, u2);
    ObjectId video = CreateVideo(cluster.tao(), u1, "v");
    cluster.sim().RunFor(Seconds(2));
    DeviceAgent viewer(&cluster, u1, 0, DeviceProfile::kMobile4g);
    DeviceAgent poster(&cluster, u2, 1, DeviceProfile::kWifi);
    viewer.SubscribeLvc(video);
    cluster.sim().RunFor(Seconds(3));
    for (int i = 0; i < 6; ++i) {
      poster.PostComment(video, "c", "en");
      cluster.sim().RunFor(Seconds(2));
    }
    cluster.sim().RunFor(Seconds(15));
    return std::make_tuple(viewer.payloads_received(), cluster.sim().events_executed(),
                           cluster.sim().cross_lp_sends(),
                           cluster.metrics().GetCounter("brass.decisions").value(),
                           cluster.metrics().GetCounter("burst.client_subscribes").value(),
                           cluster.trace().TraceCount(), cluster.trace().traces_started());
  };
  auto base = run(1);
  EXPECT_GT(std::get<2>(base), 0u);  // the scenario really crosses LPs
  EXPECT_EQ(base, run(2));
  EXPECT_EQ(base, run(8));
}

// Regression: backend sends that land in the same round as the receiving
// device's teardown must be dropped at *delivery* time (receiver LP), not
// at send time — observing the peer end's liveness from the sending LP
// (src/net/connection.cpp once did so via peer_.lock()) makes the schedule
// depend on intra-round LP execution order. The reverse_lp_order audit run
// executes each round's LPs backwards and must still match, as must a
// multi-threaded run.
TEST_P(ParallelSeedSweep, DigestInvariantToLpExecutionOrderUnderChurn) {
  auto run = [&](int threads, bool reverse_lp_order) {
    ClusterConfig config;
    config.seed = GetParam();
    config.parallel.threads = threads;
    config.parallel.device_lp_groups = 4;
    config.parallel.reverse_lp_order = reverse_lp_order;
    BladerunnerCluster cluster(config);
    UserId u1 = CreateUser(cluster.tao(), "a", "en");
    UserId u2 = CreateUser(cluster.tao(), "b", "en");
    MakeFriends(cluster.tao(), u1, u2);
    ObjectId video = CreateVideo(cluster.tao(), u1, "v");
    cluster.sim().RunFor(Seconds(2));
    DeviceAgent poster(&cluster, u2, 1, DeviceProfile::kWifi);
    std::vector<std::unique_ptr<DeviceAgent>> viewers;
    for (int i = 0; i < 8; ++i) {
      viewers.push_back(std::make_unique<DeviceAgent>(&cluster, u1, i % 2,
                                                      DeviceProfile::kMobile4g));
      viewers.back()->SubscribeLvc(video);
    }
    cluster.sim().RunFor(Seconds(1));
    // Keep updates in flight toward viewers that tear their connections
    // down (and re-establish them) on their own LPs' timers, staggered so
    // teardowns collide with deliveries in many different rounds.
    for (int k = 0; k < 12; ++k) {
      poster.PostComment(video, "c", "en");
      for (size_t i = 0; i < viewers.size(); ++i) {
        DeviceAgent* v = viewers[i].get();
        v->ctx().Schedule(Millis(40 + 13 * static_cast<SimTime>(i)),
                          [v]() { v->burst().Disconnect(); });
        v->ctx().Schedule(Millis(230 + 13 * static_cast<SimTime>(i)),
                          [v]() { v->burst().Connect(); });
      }
      cluster.sim().RunFor(Millis(500));
    }
    cluster.sim().RunFor(Seconds(10));
    uint64_t payloads = 0;
    for (auto& v : viewers) {
      payloads += v->payloads_received();
    }
    return std::make_tuple(payloads, cluster.sim().events_executed(),
                           cluster.sim().cross_lp_sends(),
                           cluster.metrics().GetCounter("brass.decisions").value(),
                           cluster.metrics().GetCounter("burst.client_subscribes").value(),
                           cluster.trace().TraceCount(), cluster.trace().traces_started());
  };
  auto base = run(1, false);
  EXPECT_GT(std::get<2>(base), 0u);
  EXPECT_EQ(base, run(1, true));  // reversed intra-round LP order
  EXPECT_EQ(base, run(8, false));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelSeedSweep, ::testing::Values(1, 17, 4242, 987654321));

}  // namespace
}  // namespace bladerunner
