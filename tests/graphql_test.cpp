// Unit tests for the query language: Value, lexer, parser, executor.

#include <gtest/gtest.h>

#include "src/graphql/executor.h"
#include "src/graphql/lexer.h"
#include "src/graphql/parser.h"
#include "src/graphql/value.h"

namespace bladerunner {
namespace {

// ---- Value ----

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(42).is_int());
  EXPECT_TRUE(Value(3.5).is_double());
  EXPECT_TRUE(Value("s").is_string());
  EXPECT_TRUE(Value(ValueList{}).is_list());
  EXPECT_TRUE(Value(ValueMap{}).is_map());
  EXPECT_TRUE(Value(42).is_number());
  EXPECT_TRUE(Value(3.5).is_number());
}

TEST(ValueTest, AccessorsWithFallbacks) {
  EXPECT_EQ(Value(42).AsInt(), 42);
  EXPECT_EQ(Value("x").AsInt(7), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(Value(3).AsDouble(), 3.0);  // int coerces to double
  EXPECT_EQ(Value(2.9).AsInt(), 2);            // double truncates to int
  EXPECT_EQ(Value("hello").AsString(), "hello");
  EXPECT_EQ(Value(1).AsString(), "");
  EXPECT_TRUE(Value(true).AsBool());
  EXPECT_FALSE(Value("x").AsBool(false));
}

TEST(ValueTest, MapAccess) {
  Value v;
  v.Set("a", 1);
  v.Set("b", "two");
  EXPECT_TRUE(v.Has("a"));
  EXPECT_FALSE(v.Has("c"));
  EXPECT_EQ(v.Get("a").AsInt(), 1);
  EXPECT_TRUE(v.Get("missing").is_null());
  EXPECT_EQ(v.Size(), 2u);
}

TEST(ValueTest, ListAccess) {
  Value v;
  v.Append(1);
  v.Append("x");
  EXPECT_EQ(v.Size(), 2u);
  EXPECT_EQ(v.AsList()[0].AsInt(), 1);
}

TEST(ValueTest, Equality) {
  Value a;
  a.Set("k", 1);
  Value b;
  b.Set("k", 1);
  EXPECT_EQ(a, b);
  b.Set("k", 2);
  EXPECT_NE(a, b);
}

TEST(ValueTest, ToJson) {
  Value v;
  v.Set("n", 3);
  v.Set("s", "a\"b");
  v.Set("l", Value(ValueList{Value(1), Value(true), Value(nullptr)}));
  EXPECT_EQ(v.ToJson(), R"({"l":[1,true,null],"n":3,"s":"a\"b"})");
}

TEST(ValueTest, WireSizeGrowsWithContent) {
  Value small;
  small.Set("a", 1);
  Value big;
  big.Set("a", std::string(1000, 'x'));
  EXPECT_GT(big.WireSize(), small.WireSize() + 900);
}

// ---- Lexer ----

TEST(LexerTest, TokenizesBasicQuery) {
  auto tokens = Tokenize("query { user(id: 42) { name } }");
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_TRUE(tokens[0].IsName("query"));
  EXPECT_TRUE(tokens[1].IsPunct('{'));
  EXPECT_TRUE(tokens[2].IsName("user"));
  EXPECT_EQ(tokens.back().type, TokenType::kEndOfInput);
}

TEST(LexerTest, NumbersAndStrings) {
  auto tokens = Tokenize(R"(-12 3.5 1e3 "he\"llo")");
  EXPECT_EQ(tokens[0].type, TokenType::kInt);
  EXPECT_EQ(tokens[0].value, "-12");
  EXPECT_EQ(tokens[1].type, TokenType::kFloat);
  EXPECT_EQ(tokens[2].type, TokenType::kFloat);
  EXPECT_EQ(tokens[3].type, TokenType::kString);
  EXPECT_EQ(tokens[3].value, "he\"llo");
}

TEST(LexerTest, CommentsAreSkipped) {
  auto tokens = Tokenize("a # comment\n b");
  EXPECT_TRUE(tokens[0].IsName("a"));
  EXPECT_TRUE(tokens[1].IsName("b"));
}

TEST(LexerTest, ErrorOnUnterminatedString) {
  auto tokens = Tokenize("\"oops");
  EXPECT_EQ(tokens[0].type, TokenType::kError);
}

TEST(LexerTest, ErrorOnStrayCharacter) {
  auto tokens = Tokenize("user %");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[1].type, TokenType::kError);
}

// ---- Parser ----

TEST(ParserTest, ParsesAnonymousQuery) {
  ParseResult result = Parse("{ me { id } }");
  ASSERT_TRUE(result.ok());
  const Operation& op = result.document->Sole();
  EXPECT_EQ(op.type, OperationType::kQuery);
  ASSERT_EQ(op.selections.fields.size(), 1u);
  EXPECT_EQ(op.selections.fields[0].name, "me");
  EXPECT_EQ(op.selections.fields[0].selections.fields[0].name, "id");
}

TEST(ParserTest, ParsesNamedMutationWithArguments) {
  ParseResult result =
      Parse(R"(mutation Post { postComment(video: 7, text: "hi", fast: true) { id } })");
  ASSERT_TRUE(result.ok());
  const Operation& op = result.document->Sole();
  EXPECT_EQ(op.type, OperationType::kMutation);
  EXPECT_EQ(op.name, "Post");
  const Field& f = op.selections.fields[0];
  EXPECT_EQ(f.Arg("video").AsInt(), 7);
  EXPECT_EQ(f.Arg("text").AsString(), "hi");
  EXPECT_TRUE(f.Arg("fast").AsBool());
  EXPECT_TRUE(f.Arg("missing").is_null());
}

TEST(ParserTest, ParsesSubscription) {
  ParseResult result = Parse("subscription { liveVideoComments(videoId: 3) { id } }");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.document->Sole().type, OperationType::kSubscription);
}

TEST(ParserTest, ParsesAliases) {
  ParseResult result = Parse("{ short: veryLongFieldName { id } }");
  ASSERT_TRUE(result.ok());
  const Field& f = result.document->Sole().selections.fields[0];
  EXPECT_EQ(f.alias, "short");
  EXPECT_EQ(f.name, "veryLongFieldName");
  EXPECT_EQ(f.ResponseKey(), "short");
}

TEST(ParserTest, ParsesListAndObjectValues) {
  ParseResult result = Parse(R"({ f(ids: [1, 2, 3], opts: { nested: "v", n: 2 }) })");
  ASSERT_TRUE(result.ok());
  const Field& f = result.document->Sole().selections.fields[0];
  EXPECT_EQ(f.Arg("ids").Size(), 3u);
  EXPECT_EQ(f.Arg("ids").AsList()[1].AsInt(), 2);
  EXPECT_EQ(f.Arg("opts").Get("nested").AsString(), "v");
}

TEST(ParserTest, ParsesEnumLiteralsAsStrings) {
  ParseResult result = Parse("{ f(mode: FAST) }");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.document->Sole().selections.fields[0].Arg("mode").AsString(), "FAST");
}

TEST(ParserTest, ParsesNullTrueFalse) {
  ParseResult result = Parse("{ f(a: null, b: true, c: false) }");
  ASSERT_TRUE(result.ok());
  const Field& f = result.document->Sole().selections.fields[0];
  EXPECT_TRUE(f.Arg("a").is_null());
  EXPECT_TRUE(f.Arg("b").AsBool());
  EXPECT_FALSE(f.Arg("c").AsBool(true));
}

TEST(ParserTest, MultipleOperations) {
  ParseResult result = Parse("query A { x } mutation B { y }");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.document->operations.size(), 2u);
}

TEST(ParserTest, ErrorOnEmptyDocument) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("   # only a comment").ok());
}

TEST(ParserTest, ErrorOnMissingBrace) {
  ParseResult result = Parse("query { user(id: 1) { name }");
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.error.empty());
}

TEST(ParserTest, ErrorOnBadOperationType) {
  EXPECT_FALSE(Parse("frobnicate { x }").ok());
}

TEST(ParserTest, ErrorOnLexError) {
  ParseResult result = Parse("{ f(x: \"unterminated) }");
  EXPECT_FALSE(result.ok());
}

// ---- Executor ----

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_.AddResolver("Query", "answer", [](const ResolveInfo&) { return Value(42); });
    schema_.AddResolver("Query", "viewer", [](const ResolveInfo& info) {
      Value v;
      v.Set("__type", "User");
      v.Set("id", info.ctx.viewer_id);
      v.Set("name", "alice");
      return v;
    });
    schema_.AddResolver("Query", "echo",
                        [](const ResolveInfo& info) { return info.field.Arg("value"); });
    schema_.AddResolver("User", "friends", [](const ResolveInfo&) {
      ValueList friends;
      for (int i = 0; i < 2; ++i) {
        Value f;
        f.Set("__type", "User");
        f.Set("id", 100 + i);
        f.Set("name", "friend" + std::to_string(i));
        friends.push_back(std::move(f));
      }
      return Value(std::move(friends));
    });
    schema_.AddResolver("Query", "costly", [](const ResolveInfo& info) {
      info.ctx.cost.range_reads += 1;
      info.ctx.cost.shards_touched += 5;
      return Value(1);
    });
  }

  ExecResult Run(const std::string& text, int64_t viewer = 7) {
    ExecContext ctx;
    ctx.viewer_id = viewer;
    return schema_.Execute(MustParse(text), ctx);
  }

  Schema schema_;
};

TEST_F(ExecutorTest, ScalarField) {
  ExecResult result = Run("{ answer }");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.data.Get("answer").AsInt(), 42);
}

TEST_F(ExecutorTest, NestedSelection) {
  ExecResult result = Run("{ viewer { id name } }");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.data.Get("viewer").Get("id").AsInt(), 7);
  EXPECT_EQ(result.data.Get("viewer").Get("name").AsString(), "alice");
}

TEST_F(ExecutorTest, SelectionProjectsOnlyRequestedFields) {
  ExecResult result = Run("{ viewer { id } }");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.data.Get("viewer").Has("id"));
  EXPECT_FALSE(result.data.Get("viewer").Has("name"));
}

TEST_F(ExecutorTest, ListOfObjects) {
  ExecResult result = Run("{ viewer { friends { name } } }");
  ASSERT_TRUE(result.ok());
  const Value& friends = result.data.Get("viewer").Get("friends");
  ASSERT_EQ(friends.Size(), 2u);
  EXPECT_EQ(friends.AsList()[1].Get("name").AsString(), "friend1");
}

TEST_F(ExecutorTest, Alias) {
  ExecResult result = Run("{ a: answer b: answer }");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.data.Get("a").AsInt(), 42);
  EXPECT_EQ(result.data.Get("b").AsInt(), 42);
}

TEST_F(ExecutorTest, ArgumentsPassThrough) {
  ExecResult result = Run(R"({ echo(value: "ping") })");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.data.Get("echo").AsString(), "ping");
}

TEST_F(ExecutorTest, UnknownFieldReportsError) {
  ExecResult result = Run("{ nonsense }");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.data.Get("nonsense").is_null());
}

TEST_F(ExecutorTest, CostAccumulates) {
  ExecResult result = Run("{ costly c2: costly }");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.cost.range_reads, 2u);
  EXPECT_EQ(result.cost.shards_touched, 10u);
}

TEST_F(ExecutorTest, ScalarWithSelectionSetIsError) {
  ExecResult result = Run("{ answer { sub } }");
  EXPECT_FALSE(result.ok());
}

// Tombstone pages: resolvers that privacy-filter list elements replace the
// content with an untyped {suppressed, indexTime} map (see ResolveComments
// in src/was/resolvers.cpp). Requested fields missing from a tombstone must
// produce per-field errors without poisoning the visible elements.
class TombstoneExecutorTest : public ExecutorTest {
 protected:
  void SetUp() override {
    ExecutorTest::SetUp();
    schema_.AddResolver("Query", "comments", [](const ResolveInfo&) {
      ValueList page;
      Value visible;
      visible.Set("__type", "Comment");
      visible.Set("id", 1);
      visible.Set("text", "hello");
      visible.Set("indexTime", 100);
      page.push_back(std::move(visible));
      Value tombstone;  // untyped: privacy-filtered placeholder
      tombstone.Set("suppressed", true);
      tombstone.Set("indexTime", 200);
      page.push_back(std::move(tombstone));
      return Value(std::move(page));
    });
  }
};

TEST_F(TombstoneExecutorTest, TombstonePageYieldsPerFieldErrors) {
  ExecResult result = Run("{ comments { id text indexTime } }");
  // The tombstone is missing id and text: one error per missing field, and
  // the untyped map reports an empty type name.
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.errors.size(), 2u);
  EXPECT_EQ(result.errors[0], "no resolver and no parent property for .id");
  EXPECT_EQ(result.errors[1], "no resolver and no parent property for .text");

  // The page itself is still usable: both elements present, the visible
  // one complete, the tombstone with nulled content fields but its shared
  // indexTime (pagination watermark) intact.
  const Value& page = result.data.Get("comments");
  ASSERT_EQ(page.Size(), 2u);
  EXPECT_EQ(page.AsList()[0].Get("text").AsString(), "hello");
  EXPECT_TRUE(page.AsList()[1].Get("id").is_null());
  EXPECT_TRUE(page.AsList()[1].Get("text").is_null());
  EXPECT_EQ(page.AsList()[1].Get("indexTime").AsInt(0), 200);
}

TEST_F(TombstoneExecutorTest, TypedElementsUseTypeNameInErrors) {
  // A typed map missing a requested field names its type in the error,
  // distinguishing schema gaps from tombstones.
  ExecResult result = Run("{ comments { author } }");
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.errors.size(), 2u);
  EXPECT_EQ(result.errors[0], "no resolver and no parent property for Comment.author");
  EXPECT_EQ(result.errors[1], "no resolver and no parent property for .author");
}

TEST_F(TombstoneExecutorTest, SelectionAvoidingMissingFieldsIsClean) {
  // Selecting only fields every element carries produces no errors at all:
  // tombstones are not inherently erroneous, only missing-field accesses.
  ExecResult result = Run("{ comments { indexTime } }");
  EXPECT_TRUE(result.ok()) << (result.errors.empty() ? "" : result.errors[0]);
  ASSERT_EQ(result.data.Get("comments").Size(), 2u);
}

TEST(QueryCostTest, AddCombines) {
  QueryCost a;
  a.point_reads = 1;
  a.range_reads = 2;
  QueryCost b;
  b.point_reads = 3;
  b.writes = 4;
  a.Add(b);
  EXPECT_EQ(a.point_reads, 4u);
  EXPECT_EQ(a.range_reads, 2u);
  EXPECT_EQ(a.writes, 4u);
  EXPECT_EQ(a.TotalReads(), 6u);
}

}  // namespace
}  // namespace bladerunner
