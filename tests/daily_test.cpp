// Tests for the DailyScenario driver: session dynamics track the diurnal
// curve, stream records are coherent, metric series are populated, and the
// teardown leaves no dangling state.

#include <gtest/gtest.h>

#include <memory>

#include "src/core/cluster.h"
#include "src/core/daily.h"
#include "src/workload/social_gen.h"

namespace bladerunner {
namespace {

class DailyTest : public ::testing::Test {
 protected:
  void Build(uint64_t seed) {
    ClusterConfig config;
    config.seed = seed;
    cluster_ = std::make_unique<BladerunnerCluster>(config);
    SocialGraphConfig graph_config;
    graph_config.num_users = 40;
    graph_config.num_videos = 40;
    graph_config.num_threads = 20;
    graph_ = GenerateSocialGraph(cluster_->tao(), cluster_->sim().rng(), graph_config);
    cluster_->sim().RunFor(Seconds(2));
  }

  std::unique_ptr<BladerunnerCluster> cluster_;
  SocialGraph graph_;
};

TEST_F(DailyTest, SeriesArePopulatedAndConsistent) {
  Build(61);
  DailyScenarioConfig config;
  config.duration = Hours(3);
  DailyScenario scenario(cluster_.get(), &graph_, config);
  scenario.Run();

  const TimeSeries& active = scenario.Series("daily.active_streams_per_user");
  const TimeSeries& subs = scenario.Series("daily.subscriptions");
  const TimeSeries& decisions = scenario.Series("daily.decisions");
  const TimeSeries& deliveries = scenario.Series("daily.deliveries");
  ASSERT_GE(active.BucketCount(), 12u);  // 3h of 15-min buckets

  double total_subs = 0.0;
  double total_decisions = 0.0;
  double total_deliveries = 0.0;
  for (size_t b = 0; b < active.BucketCount(); ++b) {
    EXPECT_GE(active.Mean(b), 0.0);
    total_subs += subs.Sum(b);
    total_decisions += decisions.Sum(b);
    total_deliveries += deliveries.Sum(b);
  }
  EXPECT_GT(total_subs, 50.0);
  EXPECT_GE(total_decisions, total_deliveries);
}

TEST_F(DailyTest, StreamRecordsAreCoherent) {
  Build(62);
  DailyScenarioConfig config;
  config.duration = Hours(2);
  DailyScenario scenario(cluster_.get(), &graph_, config);
  scenario.Run();

  std::vector<StreamRecord> records = scenario.CollectStreamRecords();
  ASSERT_GT(records.size(), 50u);
  for (const StreamRecord& record : records) {
    EXPECT_GT(record.started_at, 0);
    EXPECT_GT(record.closed_at, record.started_at) << record.key.ToString();
    EXPECT_FALSE(record.app.empty());
    // No stream can outlive the scenario by more than the GC grace period.
    EXPECT_LE(record.closed_at,
              cluster_->sim().Now() + cluster_->config().burst.server_stream_keep_timeout);
  }
}

TEST_F(DailyTest, TeardownClosesEverything) {
  Build(63);
  DailyScenarioConfig config;
  config.duration = Hours(1);
  DailyScenario scenario(cluster_.get(), &graph_, config);
  scenario.Run();
  // After Run() all sessions are offline; let detach GC settle.
  cluster_->sim().RunFor(cluster_->config().burst.server_stream_keep_timeout + Minutes(1));
  size_t host_streams = 0;
  size_t pylon_subscriptions = 0;
  for (size_t i = 0; i < cluster_->NumBrassHosts(); ++i) {
    host_streams += cluster_->brass_host(i).StreamCount();
    pylon_subscriptions += cluster_->brass_host(i).PylonSubscriptionCount();
  }
  EXPECT_EQ(host_streams, 0u);
  EXPECT_EQ(pylon_subscriptions, 0u);
}

TEST_F(DailyTest, OnlineFractionTracksDiurnalCurve) {
  Build(64);
  DailyScenarioConfig config;
  config.duration = Hours(24);
  config.streams_per_minute = 0.0;  // sessions only: fast
  config.typing_toggles_per_minute = 0.0;
  config.comments_per_minute = 0.0;
  config.messages_per_minute = 0.0;
  config.stories_per_minute = 0.0;
  config.heartbeats = false;
  config.connectivity_churn = false;
  config.online_trough = 0.2;
  config.online_peak = 0.6;
  config.peak_hour = 12.0;
  DailyScenario scenario(cluster_.get(), &graph_, config);
  scenario.Run();

  // Online fraction is visible through active connections... we proxy it
  // through subscriptions being zero and instead check the curve object.
  DiurnalCurve curve(config.online_trough, config.online_peak, config.peak_hour);
  EXPECT_NEAR(curve.At(Hours(12)), 0.6, 1e-9);
  EXPECT_NEAR(curve.At(Hours(0)), 0.2, 1e-9);
}

TEST_F(DailyTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    ClusterConfig config;
    config.seed = seed;
    BladerunnerCluster cluster(config);
    SocialGraphConfig graph_config;
    graph_config.num_users = 25;
    graph_config.num_videos = 20;
    graph_config.num_threads = 10;
    SocialGraph graph = GenerateSocialGraph(cluster.tao(), cluster.sim().rng(), graph_config);
    cluster.sim().RunFor(Seconds(2));
    DailyScenarioConfig daily;
    daily.duration = Hours(1);
    DailyScenario scenario(&cluster, &graph, daily);
    scenario.Run();
    return std::make_pair(cluster.sim().events_executed(),
                          cluster.metrics().GetCounter("brass.decisions").value());
  };
  EXPECT_EQ(run(4711), run(4711));
}

}  // namespace
}  // namespace bladerunner
