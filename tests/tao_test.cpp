// Unit tests for the TAO store: visibility/replication semantics, assoc
// lists, deletes, hot-index partitioning, the query cost model.

#include <gtest/gtest.h>

#include <memory>

#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/tao/store.h"

namespace bladerunner {
namespace {

class TaoTest : public ::testing::Test {
 protected:
  TaoTest() : topology_(Topology::ThreeRegions()), sim_(7) {
    store_ = std::make_unique<TaoStore>(&sim_, &topology_, TaoConfig{}, &metrics_);
  }

  Topology topology_;
  Simulator sim_;
  MetricsRegistry metrics_;
  std::unique_ptr<TaoStore> store_;
};

TEST_F(TaoTest, PutAndGetObject) {
  Object user;
  user.otype = "user";
  user.data.Set("name", "bob");
  ObjectId id = store_->PutObject(std::move(user));
  EXPECT_NE(id, kInvalidObjectId);

  RegionId leader = store_->LeaderRegionOf(id);
  QueryCost cost;
  auto got = store_->GetObject(leader, id, &cost);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->data.Get("name").AsString(), "bob");
  EXPECT_EQ(cost.point_reads, 1u);
  EXPECT_EQ(cost.shards_touched, 1u);
}

TEST_F(TaoTest, MissingObjectReturnsNullopt) {
  QueryCost cost;
  EXPECT_FALSE(store_->GetObject(0, 999999999, &cost).has_value());
  // A miss still costs a point read.
  EXPECT_EQ(cost.point_reads, 1u);
}

TEST_F(TaoTest, ReplicationDelaysVisibilityInRemoteRegions) {
  Object obj;
  obj.otype = "x";
  ObjectId id = store_->PutObject(std::move(obj));
  RegionId leader = store_->LeaderRegionOf(id);
  RegionId remote = (leader + 1) % topology_.num_regions();

  // Immediately: visible at the leader, not yet remotely.
  QueryCost cost;
  EXPECT_TRUE(store_->GetObject(leader, id, &cost).has_value());
  EXPECT_FALSE(store_->GetObject(remote, id, &cost).has_value());

  // After cross-region replication lag, visible everywhere.
  sim_.RunFor(Seconds(2));
  EXPECT_TRUE(store_->GetObject(remote, id, &cost).has_value());
}

TEST_F(TaoTest, AssocRangeNewestFirstWithLimit) {
  ObjectId id1 = store_->NextId();
  for (int i = 0; i < 10; ++i) {
    sim_.RunFor(Millis(10));
    Assoc a;
    a.id1 = id1;
    a.atype = AssocType::kComment;
    a.id2 = 1000 + i;
    store_->AddAssoc(std::move(a));
  }
  sim_.RunFor(Seconds(2));  // replicate
  QueryCost cost;
  auto got = store_->AssocRange(0, id1, AssocType::kComment, kBeginningOfTime, kSimTimeNever, 3,
                                &cost);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].id2, 1009);  // newest first
  EXPECT_EQ(got[2].id2, 1007);
  EXPECT_EQ(cost.range_reads, 1u);
}

TEST_F(TaoTest, AssocRangeLowerBoundIsExclusive) {
  ObjectId id1 = store_->NextId();
  sim_.RunFor(Millis(100));
  SimTime first_time = sim_.Now();
  Assoc a;
  a.id1 = id1;
  a.atype = AssocType::kComment;
  a.id2 = 1;
  store_->AddAssoc(std::move(a));
  sim_.RunFor(Millis(100));
  Assoc b;
  b.id1 = id1;
  b.atype = AssocType::kComment;
  b.id2 = 2;
  store_->AddAssoc(std::move(b));
  sim_.RunFor(Seconds(2));

  QueryCost cost;
  auto got = store_->AssocRange(store_->LeaderRegionOf(id1), id1, AssocType::kComment,
                                first_time, kSimTimeNever, 10, &cost);
  ASSERT_EQ(got.size(), 1u);  // the entry *at* first_time is excluded
  EXPECT_EQ(got[0].id2, 2);
}

TEST_F(TaoTest, GetAssocPointLookup) {
  ObjectId id1 = store_->NextId();
  Assoc a;
  a.id1 = id1;
  a.atype = AssocType::kFriend;
  a.id2 = 42;
  a.data.Set("w", 1);
  store_->AddAssoc(std::move(a));
  QueryCost cost;
  RegionId leader = store_->LeaderRegionOf(id1);
  auto got = store_->GetAssoc(leader, id1, AssocType::kFriend, 42, &cost);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->data.Get("w").AsInt(), 1);
  EXPECT_FALSE(store_->GetAssoc(leader, id1, AssocType::kFriend, 43, &cost).has_value());
}

TEST_F(TaoTest, DeleteAssocTombstonesWithReplication) {
  ObjectId id1 = store_->NextId();
  Assoc a;
  a.id1 = id1;
  a.atype = AssocType::kFriend;
  a.id2 = 42;
  store_->AddAssoc(std::move(a));
  sim_.RunFor(Seconds(2));

  RegionId leader = store_->LeaderRegionOf(id1);
  RegionId remote = (leader + 1) % topology_.num_regions();
  EXPECT_TRUE(store_->DeleteAssoc(id1, AssocType::kFriend, 42));

  QueryCost cost;
  // Gone at the leader immediately; the remote region still sees it until
  // the tombstone replicates.
  EXPECT_FALSE(store_->GetAssoc(leader, id1, AssocType::kFriend, 42, &cost).has_value());
  EXPECT_TRUE(store_->GetAssoc(remote, id1, AssocType::kFriend, 42, &cost).has_value());
  sim_.RunFor(Seconds(2));
  EXPECT_FALSE(store_->GetAssoc(remote, id1, AssocType::kFriend, 42, &cost).has_value());
}

TEST_F(TaoTest, DeleteUnknownAssocReturnsFalse) {
  EXPECT_FALSE(store_->DeleteAssoc(123, AssocType::kFriend, 456));
}

TEST_F(TaoTest, AssocCount) {
  ObjectId id1 = store_->NextId();
  for (int i = 0; i < 5; ++i) {
    Assoc a;
    a.id1 = id1;
    a.atype = AssocType::kMessage;
    a.id2 = i + 1;
    store_->AddAssoc(std::move(a));
  }
  QueryCost cost;
  EXPECT_EQ(store_->AssocCount(store_->LeaderRegionOf(id1), id1, AssocType::kMessage, &cost), 5u);
}

TEST_F(TaoTest, AssocIntersectFiltersByAuthor) {
  ObjectId video = store_->NextId();
  for (int i = 0; i < 6; ++i) {
    sim_.RunFor(Millis(5));
    Assoc a;
    a.id1 = video;
    a.atype = AssocType::kComment;
    a.id2 = 100 + i;
    a.data.Set("author", static_cast<int64_t>(i % 2 == 0 ? 7 : 8));
    store_->AddAssoc(std::move(a));
  }
  QueryCost cost;
  auto got = store_->AssocIntersect(store_->LeaderRegionOf(video), video, AssocType::kComment,
                                    {7}, kBeginningOfTime, 10, &cost);
  EXPECT_EQ(got.size(), 3u);
  EXPECT_EQ(cost.intersect_reads, 1u);
  EXPECT_GE(cost.shards_touched, 2u);  // index partitions + author shards
}

TEST_F(TaoTest, HotIndexPartitionsGrowWithWriteRate) {
  ObjectId cold = store_->NextId();
  ObjectId hot = store_->NextId();
  Assoc a;
  a.id1 = cold;
  a.atype = AssocType::kComment;
  a.id2 = 1;
  store_->AddAssoc(std::move(a));
  EXPECT_EQ(store_->IndexPartitions(cold, AssocType::kComment), 1);

  // Hammer the hot list: thousands of writes in a few seconds.
  for (int i = 0; i < 4000; ++i) {
    sim_.RunFor(Millis(1));
    Assoc h;
    h.id1 = hot;
    h.atype = AssocType::kComment;
    h.id2 = 10 + i;
    store_->AddAssoc(std::move(h));
  }
  EXPECT_GT(store_->IndexPartitions(hot, AssocType::kComment), 4);

  // Range queries on the hot index touch all partitions.
  QueryCost cost;
  store_->AssocRange(store_->LeaderRegionOf(hot), hot, AssocType::kComment, kBeginningOfTime,
                     kSimTimeNever, 10, &cost);
  EXPECT_GT(cost.shards_touched, 4u);

  // And the heat decays once writes stop.
  sim_.RunFor(Minutes(5));
  EXPECT_EQ(store_->IndexPartitions(hot, AssocType::kComment), 1);
}

TEST_F(TaoTest, AssocCountAtLeaderIgnoresReplicationLag) {
  ObjectId mailbox = store_->NextId();
  for (int i = 0; i < 4; ++i) {
    Assoc a;
    a.id1 = mailbox;
    a.atype = AssocType::kMessage;
    a.id2 = 100 + i;
    store_->AddAssoc(std::move(a));
  }
  // A remote region's *visible* count lags; the leader-consistent count —
  // what sequence-number assignment must use — does not.
  RegionId leader = store_->LeaderRegionOf(mailbox);
  RegionId remote = (leader + 1) % topology_.num_regions();
  QueryCost cost;
  EXPECT_EQ(store_->AssocCountAtLeader(mailbox, AssocType::kMessage, &cost), 4u);
  EXPECT_LE(store_->AssocCount(remote, mailbox, AssocType::kMessage, &cost), 4u);
  sim_.RunFor(Seconds(2));
  EXPECT_EQ(store_->AssocCount(remote, mailbox, AssocType::kMessage, &cost), 4u);
  // Deletes reduce the leader count immediately.
  EXPECT_TRUE(store_->DeleteAssoc(mailbox, AssocType::kMessage, 101));
  EXPECT_EQ(store_->AssocCountAtLeader(mailbox, AssocType::kMessage, &cost), 3u);
}

TEST_F(TaoTest, AssocRangeAscendingPaginates) {
  ObjectId id1 = store_->NextId();
  for (int i = 0; i < 9; ++i) {
    sim_.RunFor(Millis(10));
    Assoc a;
    a.id1 = id1;
    a.atype = AssocType::kComment;
    a.id2 = 100 + i;
    store_->AddAssoc(std::move(a));
  }
  sim_.RunFor(Seconds(2));
  RegionId leader = store_->LeaderRegionOf(id1);
  QueryCost cost;
  // Page through oldest-first, 4 at a time, using the time watermark.
  std::vector<ObjectId> seen;
  SimTime watermark = kBeginningOfTime;
  for (int page = 0; page < 3; ++page) {
    auto batch = store_->AssocRangeAscending(leader, id1, AssocType::kComment, watermark,
                                             kSimTimeNever, 4, &cost);
    for (const Assoc& a : batch) {
      seen.push_back(a.id2);
      watermark = a.time;
    }
  }
  ASSERT_EQ(seen.size(), 9u);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(seen[static_cast<size_t>(i)], 100 + i);  // oldest first, no gaps
  }
}

TEST_F(TaoTest, QueryLatencyScalesWithCost) {
  QueryCost cheap;
  cheap.point_reads = 1;
  cheap.shards_touched = 1;
  QueryCost expensive;
  expensive.range_reads = 4;
  expensive.intersect_reads = 2;
  expensive.shards_touched = 60;

  double cheap_total = 0.0;
  double expensive_total = 0.0;
  for (int i = 0; i < 200; ++i) {
    cheap_total += static_cast<double>(store_->SampleQueryLatency(cheap));
    expensive_total += static_cast<double>(store_->SampleQueryLatency(expensive));
  }
  EXPECT_GT(expensive_total, cheap_total * 3.0);
}

TEST_F(TaoTest, WriteLatencyHigherForRemoteLeader) {
  // Find an id whose leader is region 0 and one whose leader is region 2.
  ObjectId local_id = 0;
  ObjectId remote_id = 0;
  for (ObjectId id = 1; id < 4000 && (local_id == 0 || remote_id == 0); ++id) {
    if (store_->LeaderRegionOf(id) == 0 && local_id == 0) {
      local_id = id;
    }
    if (store_->LeaderRegionOf(id) == 2 && remote_id == 0) {
      remote_id = id;
    }
  }
  ASSERT_NE(local_id, 0);
  ASSERT_NE(remote_id, 0);
  double local_total = 0.0;
  double remote_total = 0.0;
  for (int i = 0; i < 100; ++i) {
    local_total += static_cast<double>(store_->SampleWriteLatency(0, local_id));
    remote_total += static_cast<double>(store_->SampleWriteLatency(0, remote_id));
  }
  EXPECT_GT(remote_total, local_total * 5.0);
}

TEST_F(TaoTest, ShardingIsStableAndBounded) {
  for (ObjectId id = 1; id < 1000; ++id) {
    int shard = store_->ShardOf(id);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, store_->config().num_shards);
    EXPECT_EQ(shard, store_->ShardOf(id));
  }
}

TEST_F(TaoTest, MetricsCountersTrackOperations) {
  Object obj;
  obj.otype = "x";
  ObjectId id = store_->PutObject(std::move(obj));
  QueryCost cost;
  store_->GetObject(0, id, &cost);
  EXPECT_EQ(metrics_.GetCounter("tao.object_writes").value(), 1);
  EXPECT_EQ(metrics_.GetCounter("tao.point_reads").value(), 1);
}

}  // namespace
}  // namespace bladerunner
