// Unit tests for Pylon: topics, rendezvous hashing, subscriber KV quorum
// semantics, publish fanout, replica inconsistency patching, quorum loss.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/net/rpc.h"
#include "src/pylon/cluster.h"
#include "src/pylon/messages.h"
#include "src/pylon/rendezvous.h"
#include "src/pylon/topic.h"
#include "src/sim/simulator.h"
#include "src/trace/analysis.h"

namespace bladerunner {
namespace {

// ---- topics ----

TEST(TopicTest, JoinAndSplit) {
  EXPECT_EQ(JoinTopic({"LVC", "123"}), "/LVC/123");
  auto parts = SplitTopic("/TI/55/7");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "TI");
  EXPECT_EQ(parts[2], "7");
  EXPECT_TRUE(SplitTopic("///").empty());
}

TEST(TopicTest, Builders) {
  EXPECT_EQ(LvcTopic(9), "/LVC/9");
  EXPECT_EQ(LvcUserTopic(9, 4), "/LVC/9/4");
  EXPECT_EQ(TypingTopic(5, 6), "/TI/5/6");
  EXPECT_EQ(ActiveStatusTopic(2), "/AS/2");
  EXPECT_EQ(StoriesTopic(3), "/Stories/3");
  EXPECT_EQ(MailboxTopic(8), "/Mailbox/8");
}

TEST(TopicTest, HashIsStableAndSpreads) {
  EXPECT_EQ(TopicHash("/LVC/1"), TopicHash("/LVC/1"));
  EXPECT_NE(TopicHash("/LVC/1"), TopicHash("/LVC/2"));
  // Shards spread: 1000 topics over 64 shards should hit most shards.
  std::set<uint32_t> shards;
  for (int i = 0; i < 1000; ++i) {
    shards.insert(TopicShard(LvcTopic(i), 64));
  }
  EXPECT_GT(shards.size(), 55u);
}

// ---- rendezvous hashing ----

TEST(RendezvousTest, Deterministic) {
  std::vector<uint64_t> nodes = {1, 2, 3, 4, 5};
  EXPECT_EQ(RendezvousTopK("/a/b", nodes, 3), RendezvousTopK("/a/b", nodes, 3));
}

TEST(RendezvousTest, KClampedToPoolSize) {
  std::vector<uint64_t> nodes = {1, 2};
  EXPECT_EQ(RendezvousTopK("/t", nodes, 5).size(), 2u);
}

TEST(RendezvousTest, MinimalDisruptionOnNodeRemoval) {
  std::vector<uint64_t> nodes = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<uint64_t> without_8 = {1, 2, 3, 4, 5, 6, 7};
  int moved = 0;
  const int kTopics = 500;
  for (int i = 0; i < kTopics; ++i) {
    Topic t = "/topic/" + std::to_string(i);
    uint64_t before = RendezvousTopK(t, nodes, 1).front();
    uint64_t after = RendezvousTopK(t, without_8, 1).front();
    if (before != 8) {
      // Keys not mapped to the removed node must not move at all.
      EXPECT_EQ(before, after);
    } else {
      ++moved;
    }
  }
  // Roughly 1/8 of keys lived on node 8.
  EXPECT_NEAR(static_cast<double>(moved) / kTopics, 1.0 / 8.0, 0.05);
}

TEST(RendezvousTest, BalancedPlacement) {
  std::vector<uint64_t> nodes = {1, 2, 3, 4};
  int counts[5] = {0, 0, 0, 0, 0};
  for (int i = 0; i < 4000; ++i) {
    counts[RendezvousTopK("/t/" + std::to_string(i), nodes, 1).front()] += 1;
  }
  for (uint64_t n = 1; n <= 4; ++n) {
    EXPECT_NEAR(counts[n], 1000, 200);
  }
}

// ---- Pylon cluster ----

class PylonTest : public ::testing::Test {
 protected:
  PylonTest() : topology_(Topology::ThreeRegions()), sim_(11) {
    PylonConfig config;
    config.servers_per_region = 2;
    config.kv_nodes_per_region = 2;
    cluster_ = std::make_unique<PylonCluster>(&sim_, &topology_, config, &metrics_, &trace_);
    // A fake BRASS host that records deliveries.
    host_rpc_.RegisterMethod("brass.event",
                             [this](MessagePtr request, RpcServer::Respond respond) {
                               auto delivery = std::static_pointer_cast<BrassEventDelivery>(request);
                               received_.push_back(delivery->event->topic);
                               received_at_.push_back(sim_.Now());
                               respond(std::make_shared<PylonAck>());
                             });
    cluster_->RegisterSubscriberHost(kHostId, 0, &host_rpc_);
  }

  // Issues a subscribe through the topic's home server and runs to ack.
  bool Subscribe(const Topic& topic, int64_t host_id, bool subscribe = true) {
    PylonServer* server = cluster_->RouteServer(topic);
    RpcChannel channel(&sim_, server->rpc(), LatencyModel::IntraRegion());
    auto request = std::make_shared<PylonSubscribeRequest>();
    request->topic = topic;
    request->host_id = host_id;
    request->subscribe = subscribe;
    bool ok = false;
    bool done = false;
    channel.Call("pylon.subscribe", request, [&](RpcStatus status, MessagePtr response) {
      done = true;
      ok = status == RpcStatus::kOk && std::static_pointer_cast<PylonAck>(response)->ok;
    });
    sim_.RunFor(Seconds(3));
    EXPECT_TRUE(done);
    return ok;
  }

  void Publish(const Topic& topic) {
    PylonServer* server = cluster_->RouteServer(topic);
    RpcChannel channel(&sim_, server->rpc(), LatencyModel::IntraRegion());
    auto event = std::make_shared<UpdateEvent>();
    event->topic = topic;
    event->event_id = next_event_id_++;
    event->created_at = sim_.Now();
    auto request = std::make_shared<PylonPublishRequest>();
    request->event = std::move(event);
    channel.Call("pylon.publish", request, [](RpcStatus, MessagePtr) {});
  }

  static constexpr int64_t kHostId = 501;
  Topology topology_;
  Simulator sim_;
  MetricsRegistry metrics_;
  TraceCollector trace_;
  std::unique_ptr<PylonCluster> cluster_;
  RpcServer host_rpc_;
  std::vector<Topic> received_;
  std::vector<SimTime> received_at_;
  uint64_t next_event_id_ = 1;
};

TEST_F(PylonTest, SubscribeThenPublishDelivers) {
  ASSERT_TRUE(Subscribe("/LVC/1", kHostId));
  Publish("/LVC/1");
  sim_.RunFor(Seconds(2));
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0], "/LVC/1");
}

TEST_F(PylonTest, PublishWithoutSubscribersDeliversNothing) {
  Publish("/LVC/2");
  sim_.RunFor(Seconds(2));
  EXPECT_TRUE(received_.empty());
}

TEST_F(PylonTest, UnsubscribeStopsDelivery) {
  ASSERT_TRUE(Subscribe("/LVC/3", kHostId));
  ASSERT_TRUE(Subscribe("/LVC/3", kHostId, /*subscribe=*/false));
  Publish("/LVC/3");
  sim_.RunFor(Seconds(2));
  EXPECT_TRUE(received_.empty());
}

TEST_F(PylonTest, MultipleSubscribersAllReceive) {
  RpcServer host2;
  int host2_received = 0;
  host2.RegisterMethod("brass.event", [&](MessagePtr, RpcServer::Respond respond) {
    ++host2_received;
    respond(std::make_shared<PylonAck>());
  });
  cluster_->RegisterSubscriberHost(502, 1, &host2);
  ASSERT_TRUE(Subscribe("/LVC/4", kHostId));
  ASSERT_TRUE(Subscribe("/LVC/4", 502));
  Publish("/LVC/4");
  sim_.RunFor(Seconds(2));
  EXPECT_EQ(received_.size(), 1u);
  EXPECT_EQ(host2_received, 1);
}

TEST_F(PylonTest, ReplicasPlacedInDistinctRegions) {
  std::vector<KvNode*> replicas = cluster_->ReplicasFor("/LVC/5", 0);
  ASSERT_EQ(replicas.size(), 3u);
  std::set<RegionId> regions;
  for (KvNode* node : replicas) {
    regions.insert(node->region());
  }
  EXPECT_EQ(regions.size(), 3u);  // one local + two distinct remote (§3.1)
  EXPECT_EQ(replicas[0]->region(), 0);  // first replica is local
}

TEST_F(PylonTest, SubscriptionSurvivesOneReplicaDown) {
  // CP with quorum 2 of 3: one dead replica must not block subscribes.
  std::vector<KvNode*> replicas = cluster_->ReplicasFor("/LVC/6", 0);
  replicas[2]->SetAvailable(false);
  EXPECT_TRUE(Subscribe("/LVC/6", kHostId));
  Publish("/LVC/6");
  sim_.RunFor(Seconds(2));
  EXPECT_EQ(received_.size(), 1u);
}

TEST_F(PylonTest, QuorumLossFailsSubscriptionClosed) {
  std::vector<KvNode*> replicas = cluster_->ReplicasFor("/LVC/7", 0);
  replicas[1]->SetAvailable(false);
  replicas[2]->SetAvailable(false);
  EXPECT_FALSE(Subscribe("/LVC/7", kHostId));
  EXPECT_GE(metrics_.GetCounter("pylon.quorum_failures").value(), 1);
}

TEST_F(PylonTest, InconsistentReplicaGetsPatchedOnPublish) {
  ASSERT_TRUE(Subscribe("/LVC/8", kHostId));
  // Manually damage one replica to simulate divergence.
  std::vector<KvNode*> replicas = cluster_->ReplicasFor("/LVC/8", cluster_->RouteServer("/LVC/8")->region());
  // Find a replica holding the topic and clear it via a patch op issued
  // directly (simulating loss).
  KvNode* damaged = nullptr;
  for (KvNode* node : replicas) {
    if (node->Find("/LVC/8") != nullptr) {
      damaged = node;
      break;
    }
  }
  ASSERT_NE(damaged, nullptr);
  RpcChannel channel(&sim_, damaged->rpc(), LatencyModel::IntraRegion());
  auto wipe = std::make_shared<KvOpRequest>();
  wipe->op = KvOpRequest::Op::kPatch;
  wipe->topic = "/LVC/8";
  wipe->replacement = {};  // empty -> erase
  channel.Call("kv.op", wipe, [](RpcStatus, MessagePtr) {});
  sim_.RunFor(Seconds(1));
  EXPECT_EQ(damaged->Find("/LVC/8"), nullptr);

  // Publishing detects divergence among replica views and repairs it.
  Publish("/LVC/8");
  sim_.RunFor(Seconds(3));
  EXPECT_GE(metrics_.GetCounter("pylon.kv_inconsistencies").value(), 1);
  ASSERT_NE(damaged->Find("/LVC/8"), nullptr);
  EXPECT_EQ(damaged->Find("/LVC/8")->count(kHostId), 1u);
  // Delivery still happened (first-responder forwarding).
  EXPECT_EQ(received_.size(), 1u);
}

TEST_F(PylonTest, DeadHostSkippedDuringFanout) {
  ASSERT_TRUE(Subscribe("/LVC/9", kHostId));
  cluster_->UnregisterSubscriberHost(kHostId);
  Publish("/LVC/9");
  sim_.RunFor(Seconds(2));
  EXPECT_TRUE(received_.empty());
  EXPECT_GE(metrics_.GetCounter("pylon.fanout_dead_hosts").value(), 1);
}

TEST_F(PylonTest, HostUnregisteringMidFanoutIsSafe) {
  // Regression: the fanout pipeline holds each send for ~50ms; a host that
  // unregisters (drain/crash) in that window used to leave the scheduled
  // send with a dangling channel pointer. The delivery must simply be lost.
  ASSERT_TRUE(Subscribe("/LVC/12", kHostId));
  Publish("/LVC/12");
  // Unregister after the publish is in flight but before the pipeline
  // delay elapses.
  sim_.RunFor(Millis(10));
  cluster_->UnregisterSubscriberHost(kHostId);
  sim_.RunFor(Seconds(3));
  EXPECT_TRUE(received_.empty());  // lost, not crashed (§4: best effort)
}

TEST_F(PylonTest, TopicRoutingIsStable) {
  PylonServer* a = cluster_->RouteServer("/LVC/10");
  PylonServer* b = cluster_->RouteServer("/LVC/10");
  EXPECT_EQ(a, b);
}

TEST_F(PylonTest, SubscribeReplicationLatencyIsRecorded) {
  ASSERT_TRUE(Subscribe("/LVC/11", kHostId));
  SpanQuery query;
  query.name = "pylon.subscribe";
  Histogram h = SpanDurationHistogram(trace_, query);
  EXPECT_GE(h.count(), 1u);
  // Quorum requires one remote region: tens of milliseconds, not seconds.
  EXPECT_GT(h.Mean(), static_cast<double>(Millis(5)));
  EXPECT_LT(h.Mean(), static_cast<double>(Millis(500)));
}

}  // namespace
}  // namespace bladerunner
