// Unit tests for Pylon: topics, rendezvous hashing, subscriber KV quorum
// semantics, publish fanout, replica inconsistency patching, quorum loss.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/net/rpc.h"
#include "src/pylon/cluster.h"
#include "src/pylon/messages.h"
#include "src/pylon/rendezvous.h"
#include "src/pylon/topic.h"
#include "src/sim/simulator.h"
#include "src/trace/analysis.h"

namespace bladerunner {
namespace {

// ---- topics ----

TEST(TopicTest, JoinAndSplit) {
  EXPECT_EQ(JoinTopic({"LVC", "123"}), "/LVC/123");
  auto parts = SplitTopic("/TI/55/7");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "TI");
  EXPECT_EQ(parts[2], "7");
  EXPECT_TRUE(SplitTopic("///").empty());
}

TEST(TopicTest, Builders) {
  EXPECT_EQ(LvcTopic(9), "/LVC/9");
  EXPECT_EQ(LvcUserTopic(9, 4), "/LVC/9/4");
  EXPECT_EQ(TypingTopic(5, 6), "/TI/5/6");
  EXPECT_EQ(ActiveStatusTopic(2), "/AS/2");
  EXPECT_EQ(StoriesTopic(3), "/Stories/3");
  EXPECT_EQ(MailboxTopic(8), "/Mailbox/8");
}

TEST(TopicTest, HashIsStableAndSpreads) {
  EXPECT_EQ(TopicHash("/LVC/1"), TopicHash("/LVC/1"));
  EXPECT_NE(TopicHash("/LVC/1"), TopicHash("/LVC/2"));
  // Shards spread: 1000 topics over 64 shards should hit most shards.
  std::set<uint32_t> shards;
  for (int i = 0; i < 1000; ++i) {
    shards.insert(TopicShard(LvcTopic(i), 64));
  }
  EXPECT_GT(shards.size(), 55u);
}

// ---- rendezvous hashing ----

TEST(RendezvousTest, Deterministic) {
  std::vector<uint64_t> nodes = {1, 2, 3, 4, 5};
  EXPECT_EQ(RendezvousTopK("/a/b", nodes, 3), RendezvousTopK("/a/b", nodes, 3));
}

TEST(RendezvousTest, KClampedToPoolSize) {
  std::vector<uint64_t> nodes = {1, 2};
  EXPECT_EQ(RendezvousTopK("/t", nodes, 5).size(), 2u);
}

TEST(RendezvousTest, MinimalDisruptionOnNodeRemoval) {
  std::vector<uint64_t> nodes = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<uint64_t> without_8 = {1, 2, 3, 4, 5, 6, 7};
  int moved = 0;
  const int kTopics = 500;
  for (int i = 0; i < kTopics; ++i) {
    Topic t = "/topic/" + std::to_string(i);
    uint64_t before = RendezvousTopK(t, nodes, 1).front();
    uint64_t after = RendezvousTopK(t, without_8, 1).front();
    if (before != 8) {
      // Keys not mapped to the removed node must not move at all.
      EXPECT_EQ(before, after);
    } else {
      ++moved;
    }
  }
  // Roughly 1/8 of keys lived on node 8.
  EXPECT_NEAR(static_cast<double>(moved) / kTopics, 1.0 / 8.0, 0.05);
}

TEST(RendezvousTest, BalancedPlacement) {
  std::vector<uint64_t> nodes = {1, 2, 3, 4};
  int counts[5] = {0, 0, 0, 0, 0};
  for (int i = 0; i < 4000; ++i) {
    counts[RendezvousTopK("/t/" + std::to_string(i), nodes, 1).front()] += 1;
  }
  for (uint64_t n = 1; n <= 4; ++n) {
    EXPECT_NEAR(counts[n], 1000, 200);
  }
}

// ---- Pylon cluster ----

class PylonTest : public ::testing::Test {
 protected:
  PylonTest() : topology_(Topology::ThreeRegions()), sim_(11) {
    PylonConfig config;
    config.servers_per_region = 2;
    config.kv_nodes_per_region = 2;
    cluster_ = std::make_unique<PylonCluster>(&sim_, &topology_, config, &metrics_, &trace_);
    // A fake BRASS host that records deliveries.
    host_rpc_.RegisterMethod("brass.event",
                             [this](MessagePtr request, RpcServer::Respond respond) {
                               auto delivery = std::static_pointer_cast<BrassEventDelivery>(request);
                               received_.push_back(delivery->event->topic);
                               received_at_.push_back(sim_.Now());
                               respond(std::make_shared<PylonAck>());
                             });
    cluster_->RegisterSubscriberHost(kHostId, 0, &host_rpc_);
  }

  // Issues a subscribe through the topic's home server and runs to ack.
  bool Subscribe(const Topic& topic, int64_t host_id, bool subscribe = true) {
    PylonServer* server = cluster_->RouteServer(topic);
    RpcChannel channel(&sim_, server->rpc(), LatencyModel::IntraRegion());
    auto request = std::make_shared<PylonSubscribeRequest>();
    request->topic = topic;
    request->host_id = host_id;
    request->subscribe = subscribe;
    bool ok = false;
    bool done = false;
    channel.Call("pylon.subscribe", request, [&](RpcStatus status, MessagePtr response) {
      done = true;
      ok = status == RpcStatus::kOk && std::static_pointer_cast<PylonAck>(response)->ok;
    });
    sim_.RunFor(Seconds(3));
    EXPECT_TRUE(done);
    return ok;
  }

  void Publish(const Topic& topic) {
    PylonServer* server = cluster_->RouteServer(topic);
    RpcChannel channel(&sim_, server->rpc(), LatencyModel::IntraRegion());
    auto event = std::make_shared<UpdateEvent>();
    event->topic = topic;
    event->event_id = next_event_id_++;
    event->created_at = sim_.Now();
    auto request = std::make_shared<PylonPublishRequest>();
    request->event = std::move(event);
    channel.Call("pylon.publish", request, [](RpcStatus, MessagePtr) {});
  }

  static constexpr int64_t kHostId = 501;
  Topology topology_;
  Simulator sim_;
  MetricsRegistry metrics_;
  TraceCollector trace_;
  std::unique_ptr<PylonCluster> cluster_;
  RpcServer host_rpc_;
  std::vector<Topic> received_;
  std::vector<SimTime> received_at_;
  uint64_t next_event_id_ = 1;
};

TEST_F(PylonTest, SubscribeThenPublishDelivers) {
  ASSERT_TRUE(Subscribe("/LVC/1", kHostId));
  Publish("/LVC/1");
  sim_.RunFor(Seconds(2));
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0], "/LVC/1");
}

TEST_F(PylonTest, PublishWithoutSubscribersDeliversNothing) {
  Publish("/LVC/2");
  sim_.RunFor(Seconds(2));
  EXPECT_TRUE(received_.empty());
}

TEST_F(PylonTest, UnsubscribeStopsDelivery) {
  ASSERT_TRUE(Subscribe("/LVC/3", kHostId));
  ASSERT_TRUE(Subscribe("/LVC/3", kHostId, /*subscribe=*/false));
  Publish("/LVC/3");
  sim_.RunFor(Seconds(2));
  EXPECT_TRUE(received_.empty());
}

TEST_F(PylonTest, MultipleSubscribersAllReceive) {
  RpcServer host2;
  int host2_received = 0;
  host2.RegisterMethod("brass.event", [&](MessagePtr, RpcServer::Respond respond) {
    ++host2_received;
    respond(std::make_shared<PylonAck>());
  });
  cluster_->RegisterSubscriberHost(502, 1, &host2);
  ASSERT_TRUE(Subscribe("/LVC/4", kHostId));
  ASSERT_TRUE(Subscribe("/LVC/4", 502));
  Publish("/LVC/4");
  sim_.RunFor(Seconds(2));
  EXPECT_EQ(received_.size(), 1u);
  EXPECT_EQ(host2_received, 1);
}

TEST_F(PylonTest, ReplicasPlacedInDistinctRegions) {
  std::vector<KvNode*> replicas = cluster_->ReplicasFor("/LVC/5", 0);
  ASSERT_EQ(replicas.size(), 3u);
  std::set<RegionId> regions;
  for (KvNode* node : replicas) {
    regions.insert(node->region());
  }
  EXPECT_EQ(regions.size(), 3u);  // one local + two distinct remote (§3.1)
  EXPECT_EQ(replicas[0]->region(), 0);  // first replica is local
}

TEST_F(PylonTest, SubscriptionSurvivesOneReplicaDown) {
  // CP with quorum 2 of 3: one dead replica must not block subscribes.
  std::vector<KvNode*> replicas = cluster_->ReplicasFor("/LVC/6", 0);
  replicas[2]->SetAvailable(false);
  EXPECT_TRUE(Subscribe("/LVC/6", kHostId));
  Publish("/LVC/6");
  sim_.RunFor(Seconds(2));
  EXPECT_EQ(received_.size(), 1u);
}

TEST_F(PylonTest, QuorumLossFailsSubscriptionClosed) {
  std::vector<KvNode*> replicas = cluster_->ReplicasFor("/LVC/7", 0);
  replicas[1]->SetAvailable(false);
  replicas[2]->SetAvailable(false);
  EXPECT_FALSE(Subscribe("/LVC/7", kHostId));
  EXPECT_GE(metrics_.GetCounter("pylon.quorum_failures").value(), 1);
}

TEST_F(PylonTest, InconsistentReplicaGetsPatchedOnPublish) {
  // Create divergence the way production does: one replica flaps (transient
  // network outage, not a membership change) while the subscribe lands, so
  // it misses the kAdd the other two replicas acked.
  std::vector<KvNode*> replicas =
      cluster_->ReplicasFor("/LVC/8", cluster_->RouteServer("/LVC/8")->region());
  KvNode* damaged = replicas[2];
  damaged->SetAvailable(false);
  ASSERT_TRUE(Subscribe("/LVC/8", kHostId));  // quorum 2 of 3 still holds
  damaged->SetAvailable(true);
  EXPECT_EQ(damaged->Find("/LVC/8"), nullptr);

  // Publishing detects divergence among replica views and repairs it.
  Publish("/LVC/8");
  sim_.RunFor(Seconds(3));
  EXPECT_GE(metrics_.GetCounter("pylon.kv_inconsistencies").value(), 1);
  ASSERT_NE(damaged->Find("/LVC/8"), nullptr);
  EXPECT_EQ(damaged->Find("/LVC/8")->count(kHostId), 1u);
  // Delivery still happened (first-responder forwarding).
  EXPECT_EQ(received_.size(), 1u);
}

TEST_F(PylonTest, DeadHostSkippedDuringFanout) {
  ASSERT_TRUE(Subscribe("/LVC/9", kHostId));
  cluster_->UnregisterSubscriberHost(kHostId);
  Publish("/LVC/9");
  sim_.RunFor(Seconds(2));
  EXPECT_TRUE(received_.empty());
  EXPECT_GE(metrics_.GetCounter("pylon.fanout_dead_hosts").value(), 1);
}

TEST_F(PylonTest, HostUnregisteringMidFanoutIsSafe) {
  // Regression: the fanout pipeline holds each send for ~50ms; a host that
  // unregisters (drain/crash) in that window used to leave the scheduled
  // send with a dangling channel pointer. The delivery must simply be lost.
  ASSERT_TRUE(Subscribe("/LVC/12", kHostId));
  Publish("/LVC/12");
  // Unregister after the publish is in flight but before the pipeline
  // delay elapses.
  sim_.RunFor(Millis(10));
  cluster_->UnregisterSubscriberHost(kHostId);
  sim_.RunFor(Seconds(3));
  EXPECT_TRUE(received_.empty());  // lost, not crashed (§4: best effort)
}

TEST_F(PylonTest, TopicRoutingIsStable) {
  PylonServer* a = cluster_->RouteServer("/LVC/10");
  PylonServer* b = cluster_->RouteServer("/LVC/10");
  EXPECT_EQ(a, b);
}

TEST_F(PylonTest, SubscribeReplicationLatencyIsRecorded) {
  ASSERT_TRUE(Subscribe("/LVC/11", kHostId));
  SpanQuery query;
  query.name = "pylon.subscribe";
  Histogram h = SpanDurationHistogram(trace_, query);
  EXPECT_GE(h.count(), 1u);
  // Quorum requires one remote region: tens of milliseconds, not seconds.
  EXPECT_GT(h.Mean(), static_cast<double>(Millis(5)));
  EXPECT_LT(h.Mean(), static_cast<double>(Millis(500)));
}

// ---- KV crash / recovery ----

TEST_F(PylonTest, SubscribeWithNoReachableReplicasFailsClosed) {
  for (size_t i = 0; i < cluster_->NumKvNodes(); ++i) {
    cluster_->KvNodeAt(i)->Fail();
  }
  // Regression: with an empty replica set the subscribe path used to issue
  // zero KV calls and never respond — the RPC hung until its timeout.
  // Subscribe() asserts the ack actually arrives.
  EXPECT_FALSE(Subscribe("/LVC/20", kHostId));
  EXPECT_GE(metrics_.GetCounter("pylon.quorum_failures").value(), 1);
}

TEST_F(PylonTest, CrashWithStateLossRestoredByAntiEntropy) {
  ASSERT_TRUE(Subscribe("/LVC/21", kHostId));
  std::vector<KvNode*> replicas =
      cluster_->ReplicasFor("/LVC/21", cluster_->RouteServer("/LVC/21")->region());
  KvNode* crashed = replicas[0];
  ASSERT_NE(crashed->Find("/LVC/21"), nullptr);
  crashed->Fail();
  EXPECT_EQ(crashed->lifecycle(), KvNodeState::kFailed);
  EXPECT_FALSE(crashed->InQuorumPool());
  crashed->Recover(/*lose_state=*/true);
  sim_.RunFor(Seconds(3));
  EXPECT_EQ(crashed->lifecycle(), KvNodeState::kLive);
  EXPECT_GE(metrics_.GetCounter("pylon.kv_anti_entropy_runs").value(), 1);
  // The wiped table was refilled from peer replicas before rejoining.
  ASSERT_NE(crashed->Find("/LVC/21"), nullptr);
  EXPECT_EQ(crashed->Find("/LVC/21")->count(kHostId), 1u);
  Publish("/LVC/21");
  sim_.RunFor(Seconds(2));
  EXPECT_EQ(received_.size(), 1u);
}

TEST_F(PylonTest, ReplicaPlacementHealsAroundCrashAndRestores) {
  const Topic topic = "/LVC/22";
  RegionId home = cluster_->RouteServer(topic)->region();
  std::vector<KvNode*> before = cluster_->ReplicasFor(topic, home);
  ASSERT_EQ(before.size(), 3u);
  before[0]->Fail();
  std::vector<KvNode*> during = cluster_->ReplicasFor(topic, home);
  ASSERT_EQ(during.size(), 3u);  // re-ranked onto survivors: set heals
  for (KvNode* node : during) {
    EXPECT_NE(node, before[0]);
    EXPECT_TRUE(node->InQuorumPool());
  }
  before[0]->Recover(/*lose_state=*/false);
  sim_.RunFor(Seconds(3));  // anti-entropy pass completes
  EXPECT_EQ(before[0]->lifecycle(), KvNodeState::kLive);
  EXPECT_EQ(cluster_->ReplicasFor(topic, home), before);  // placement restored
}

TEST_F(PylonTest, UnsubscribeWhileReplicaDownIsNotResurrectedByRecovery) {
  const Topic topic = "/LVC/23";
  ASSERT_TRUE(Subscribe(topic, kHostId));
  RegionId home = cluster_->RouteServer(topic)->region();
  std::vector<KvNode*> replicas = cluster_->ReplicasFor(topic, home);
  KvNode* crashed = replicas[0];
  ASSERT_NE(crashed->Find(topic), nullptr);
  crashed->Fail();
  // The unsubscribe lands on the healed replica set while the node is down;
  // the peers record tombstones for it.
  ASSERT_TRUE(Subscribe(topic, kHostId, /*subscribe=*/false));
  crashed->Recover(/*lose_state=*/false);  // stale table still lists the host
  sim_.RunFor(Seconds(3));
  EXPECT_EQ(crashed->lifecycle(), KvNodeState::kLive);
  // Remove-wins: the peers' tombstones beat the stale membership, so the
  // recovered node does not resurrect the unsubscribed host.
  const std::set<int64_t>* subs = crashed->Find(topic);
  EXPECT_TRUE(subs == nullptr || subs->count(kHostId) == 0);
  Publish(topic);
  sim_.RunFor(Seconds(2));
  EXPECT_TRUE(received_.empty());
}

TEST_F(PylonTest, StalePatchDoesNotClobberConcurrentAdd) {
  const Topic topic = "/LVC/24";
  std::vector<KvNode*> replicas =
      cluster_->ReplicasFor(topic, cluster_->RouteServer(topic)->region());
  KvNode* damaged = replicas[2];
  damaged->SetAvailable(false);
  ASSERT_TRUE(Subscribe(topic, kHostId));  // damaged misses the add
  damaged->SetAvailable(true);

  // A publish computes its repair patch from the divergent views...
  Publish(topic);
  // ...and while the patch is in flight, another quorum-acked add lands on
  // the previously-damaged replica (100ms: after its kGet was answered,
  // before the patch arrives over the cross-region link).
  sim_.RunFor(Millis(100));
  RpcChannel direct(&sim_, damaged->rpc(), LatencyModel::IntraRegion());
  auto add = std::make_shared<KvOpRequest>();
  add->op = KvOpRequest::Op::kAdd;
  add->topic = topic;
  add->subscriber = 502;
  direct.Call("kv.op", add, [](RpcStatus, MessagePtr) {});
  sim_.RunFor(Seconds(3));

  // Regression: the patch used to *replace* the subscriber set, erasing the
  // concurrent add. Now it is version-guarded: the add bumped the version,
  // so the stale patch is rejected and the add survives.
  const std::set<int64_t>* subs = damaged->Find(topic);
  ASSERT_NE(subs, nullptr);
  EXPECT_EQ(subs->count(502), 1u);
  EXPECT_GE(metrics_.GetCounter("pylon.kv_patch_conflicts").value(), 1);

  // A later publish repairs the original subscriber additively.
  Publish(topic);
  sim_.RunFor(Seconds(3));
  subs = damaged->Find(topic);
  ASSERT_NE(subs, nullptr);
  EXPECT_EQ(subs->count(kHostId), 1u);
  EXPECT_EQ(subs->count(502), 1u);
}

// ---- quorum-wait ablation fanout semantics ----

namespace {

// A topic whose home server is in region 0, so the replica in region 2 (the
// slowest link from home) is a deterministic straggler.
Topic HomeRegionZeroTopic(PylonCluster* cluster) {
  for (int i = 0;; ++i) {
    Topic topic = "/LVC/" + std::to_string(100 + i);
    if (cluster->RouteServer(topic)->region() == 0) {
      return topic;
    }
  }
}

// Plants a subscriber directly on one KV node (bypassing the quorum write),
// creating a divergent replica view.
void DirectAdd(Simulator* sim, KvNode* node, const Topic& topic, int64_t host) {
  RpcChannel direct(sim, node->rpc(), LatencyModel::IntraRegion());
  auto add = std::make_shared<KvOpRequest>();
  add->op = KvOpRequest::Op::kAdd;
  add->topic = topic;
  add->subscriber = host;
  direct.Call("kv.op", add, [](RpcStatus, MessagePtr) {});
  sim->RunFor(Seconds(1));
}

}  // namespace

TEST(PylonQuorumWaitTest, StragglerViewIsNotForwardedAfterQuorum) {
  Simulator sim(7);
  Topology topology = Topology::ThreeRegions();
  MetricsRegistry metrics;
  PylonConfig config;
  config.servers_per_region = 2;
  config.kv_nodes_per_region = 2;
  config.forward_on_first_response = false;  // quorum-wait ablation
  PylonCluster cluster(&sim, &topology, config, &metrics);

  int a_received = 0;
  int c_received = 0;
  RpcServer host_a;
  host_a.RegisterMethod("brass.event", [&](MessagePtr, RpcServer::Respond respond) {
    ++a_received;
    respond(std::make_shared<PylonAck>());
  });
  RpcServer host_c;
  host_c.RegisterMethod("brass.event", [&](MessagePtr, RpcServer::Respond respond) {
    ++c_received;
    respond(std::make_shared<PylonAck>());
  });
  cluster.RegisterSubscriberHost(601, 0, &host_a);
  cluster.RegisterSubscriberHost(603, 0, &host_c);

  Topic topic = HomeRegionZeroTopic(&cluster);
  PylonServer* server = cluster.RouteServer(topic);
  RpcChannel channel(&sim, server->rpc(), LatencyModel::IntraRegion());
  auto request = std::make_shared<PylonSubscribeRequest>();
  request->topic = topic;
  request->host_id = 601;
  channel.Call("pylon.subscribe", request, [](RpcStatus, MessagePtr) {});
  sim.RunFor(Seconds(2));

  // Host C exists only in the straggler replica's view (region 2, the
  // slowest link from the home region): its kGet answer arrives after the
  // quorum of the local and region-1 views has already been forwarded.
  std::vector<KvNode*> replicas = cluster.ReplicasFor(topic, 0);
  ASSERT_EQ(replicas.size(), 3u);
  ASSERT_EQ(replicas[2]->region(), 2);
  DirectAdd(&sim, replicas[2], topic, 603);

  auto event = std::make_shared<UpdateEvent>();
  event->topic = topic;
  event->event_id = 1;
  event->created_at = sim.Now();
  auto publish = std::make_shared<PylonPublishRequest>();
  publish->event = std::move(event);
  channel.Call("pylon.publish", publish, [](RpcStatus, MessagePtr) {});
  sim.RunFor(Seconds(3));

  EXPECT_EQ(a_received, 1);
  // Regression: the quorum-wait branch used to re-run the forward loop on
  // every straggler response, leaking forward-on-first semantics into the
  // ablation. The straggler's extra subscriber only feeds the patch check.
  EXPECT_EQ(c_received, 0);
}

TEST(PylonFanoutTest, SerializationIndexCarriesAcrossReplicaViews) {
  Simulator sim(9);
  Topology topology = Topology::ThreeRegions();
  MetricsRegistry metrics;
  PylonConfig config;
  config.servers_per_region = 2;
  config.kv_nodes_per_region = 2;
  // Make the per-subscriber serialization premium dominate every other
  // latency in the fanout: 200ms per already-forwarded subscriber.
  config.per_subscriber_send_us = 200000.0;
  PylonCluster cluster(&sim, &topology, config, &metrics);

  SimTime a_time = 0;
  SimTime c_time = 0;
  RpcServer host_a;
  host_a.RegisterMethod("brass.event", [&](MessagePtr, RpcServer::Respond respond) {
    a_time = sim.Now();
    respond(std::make_shared<PylonAck>());
  });
  RpcServer host_c;
  host_c.RegisterMethod("brass.event", [&](MessagePtr, RpcServer::Respond respond) {
    c_time = sim.Now();
    respond(std::make_shared<PylonAck>());
  });
  cluster.RegisterSubscriberHost(701, 0, &host_a);
  cluster.RegisterSubscriberHost(702, 0, &host_c);

  Topic topic = HomeRegionZeroTopic(&cluster);
  PylonServer* server = cluster.RouteServer(topic);
  RpcChannel channel(&sim, server->rpc(), LatencyModel::IntraRegion());
  auto request = std::make_shared<PylonSubscribeRequest>();
  request->topic = topic;
  request->host_id = 701;
  channel.Call("pylon.subscribe", request, [](RpcStatus, MessagePtr) {});
  sim.RunFor(Seconds(2));

  // Host C is known only to the remote replicas, so it is forwarded by a
  // *second* forward_new batch once their views arrive.
  std::vector<KvNode*> replicas = cluster.ReplicasFor(topic, 0);
  ASSERT_EQ(replicas.size(), 3u);
  DirectAdd(&sim, replicas[1], topic, 702);
  DirectAdd(&sim, replicas[2], topic, 702);

  auto event = std::make_shared<UpdateEvent>();
  event->topic = topic;
  event->event_id = 1;
  event->created_at = sim.Now();
  auto publish = std::make_shared<PylonPublishRequest>();
  publish->event = std::move(event);
  channel.Call("pylon.publish", publish, [](RpcStatus, MessagePtr) {});
  sim.RunFor(Seconds(5));

  ASSERT_GT(a_time, 0);
  ASSERT_GT(c_time, 0);
  // Regression: the serialization index used to reset to zero for each
  // replica's batch, so C (the publish's second overall send) paid no
  // premium. Carried across batches, C pays the full one-subscriber
  // premium on top of the remote view's arrival.
  EXPECT_GE(c_time - a_time, Millis(180));
}

}  // namespace
}  // namespace bladerunner
