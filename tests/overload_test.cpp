// Overload-control tests: bounded conflating delivery queues, host admission
// budgets with router spill/reject, drain-aware routing, degrade-to-poll
// fallback under a hot-topic spike, and Pylon publish-side backpressure with
// priority classes (docs/OVERLOAD.md).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/brass/delivery_queue.h"
#include "src/core/cluster.h"
#include "src/core/device.h"
#include "src/net/rpc.h"
#include "src/pylon/cluster.h"
#include "src/pylon/messages.h"
#include "src/pylon/topic.h"
#include "src/sim/simulator.h"
#include "src/workload/social_gen.h"

namespace bladerunner {
namespace {

// ---- ConflatingDeliveryQueue unit tests ----

Value Payload(const std::string& tag) {
  Value v;
  v.Set("tag", tag);
  return v;
}

DeliverOptions Keyed(const std::string& key, uint64_t version) {
  DeliverOptions options;
  options.conflation_key = key;
  options.version = version;
  return options;
}

TEST(DeliveryQueueTest, ConflatesNewestVersionWins) {
  ConflatingDeliveryQueue queue;
  EXPECT_EQ(queue.Offer(Payload("v1"), Keyed("comment:7", 1), true, 8).outcome,
            ConflatingDeliveryQueue::Outcome::kQueued);
  EXPECT_EQ(queue.Offer(Payload("v3"), Keyed("comment:7", 3), true, 8).outcome,
            ConflatingDeliveryQueue::Outcome::kConflated);
  // An out-of-order older version still conflates but must not clobber the
  // newer pending payload.
  EXPECT_EQ(queue.Offer(Payload("v2"), Keyed("comment:7", 2), true, 8).outcome,
            ConflatingDeliveryQueue::Outcome::kConflated);
  ASSERT_EQ(queue.size(), 1u);
  PendingDelivery front = queue.PopFront();
  EXPECT_EQ(front.payload.Get("tag").AsString(), "v3");
  EXPECT_EQ(front.options.version, 3u);
}

TEST(DeliveryQueueTest, ConflatedEntryKeepsQueuePosition) {
  ConflatingDeliveryQueue queue;
  queue.Offer(Payload("a1"), Keyed("a", 1), true, 8);
  queue.Offer(Payload("b1"), Keyed("b", 1), true, 8);
  queue.Offer(Payload("a2"), Keyed("a", 2), true, 8);
  ASSERT_EQ(queue.size(), 2u);
  // "a" was offered first, so its (updated) entry still drains first.
  EXPECT_EQ(queue.PopFront().payload.Get("tag").AsString(), "a2");
  EXPECT_EQ(queue.PopFront().payload.Get("tag").AsString(), "b1");
}

TEST(DeliveryQueueTest, EmptyKeyAndNonConflatableAppsNeverConflate) {
  ConflatingDeliveryQueue queue;
  queue.Offer(Payload("x"), DeliverOptions{}, true, 8);
  queue.Offer(Payload("y"), DeliverOptions{}, true, 8);
  EXPECT_EQ(queue.size(), 2u);
  // Same key, but the app's descriptor is not conflatable.
  EXPECT_EQ(queue.Offer(Payload("k1"), Keyed("k", 1), false, 8).outcome,
            ConflatingDeliveryQueue::Outcome::kQueued);
  EXPECT_EQ(queue.Offer(Payload("k2"), Keyed("k", 2), false, 8).outcome,
            ConflatingDeliveryQueue::Outcome::kQueued);
  EXPECT_EQ(queue.size(), 4u);
}

TEST(DeliveryQueueTest, ShedsOldestAtBound) {
  ConflatingDeliveryQueue queue;
  queue.Offer(Payload("one"), Keyed("k1", 1), true, 2);
  queue.Offer(Payload("two"), Keyed("k2", 1), true, 2);
  auto result = queue.Offer(Payload("three"), Keyed("k3", 1), true, 2);
  EXPECT_EQ(result.outcome, ConflatingDeliveryQueue::Outcome::kShed);
  EXPECT_EQ(result.shed.payload.Get("tag").AsString(), "one");
  ASSERT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.PopFront().payload.Get("tag").AsString(), "two");
  EXPECT_EQ(queue.PopFront().payload.Get("tag").AsString(), "three");
}

// Conservation invariant: every offered delivery is accounted for exactly
// once — offered == drained + conflated + shed. Pinned across the two
// orderings that are easy to double-count: a conflated entry that is later
// displaced at the bound (conflate-then-shed), and shedding at the bound
// with non-conflatable offers.
TEST(DeliveryQueueTest, EveryOfferAccountedForAcrossOrderings) {
  struct Tally {
    int64_t offered = 0;
    int64_t conflated = 0;
    int64_t shed = 0;

    void Count(ConflatingDeliveryQueue::Outcome outcome) {
      offered += 1;
      if (outcome == ConflatingDeliveryQueue::Outcome::kConflated) conflated += 1;
      if (outcome == ConflatingDeliveryQueue::Outcome::kShed) shed += 1;
    }
  };
  auto drained = [](ConflatingDeliveryQueue& queue) {
    int64_t n = 0;
    while (!queue.empty()) {
      queue.PopFront();
      n += 1;
    }
    return n;
  };

  // Conflate-then-shed: k1 absorbs an update, then the (conflated) entry is
  // itself displaced at the bound. The absorbed update must not resurface as
  // a second drainable delivery, and the displaced entry counts as shed.
  {
    ConflatingDeliveryQueue queue;
    Tally tally;
    tally.Count(queue.Offer(Payload("k1v1"), Keyed("k1", 1), true, 2).outcome);
    tally.Count(queue.Offer(Payload("k1v2"), Keyed("k1", 2), true, 2).outcome);  // conflates
    tally.Count(queue.Offer(Payload("k2v1"), Keyed("k2", 1), true, 2).outcome);
    tally.Count(queue.Offer(Payload("k3v1"), Keyed("k3", 1), true, 2).outcome);  // sheds k1
    tally.Count(queue.Offer(Payload("k3v2"), Keyed("k3", 2), true, 2).outcome);  // conflates
    EXPECT_EQ(tally.conflated, 2);
    EXPECT_EQ(tally.shed, 1);
    EXPECT_EQ(tally.offered, drained(queue) + tally.conflated + tally.shed);
  }

  // Shed-at-bound: empty keys never conflate, so a bound-1 queue sheds on
  // every offer after the first.
  {
    ConflatingDeliveryQueue queue;
    Tally tally;
    for (int i = 0; i < 3; ++i) {
      tally.Count(queue.Offer(Payload("p"), Keyed("", 1), true, 1).outcome);
    }
    EXPECT_EQ(tally.conflated, 0);
    EXPECT_EQ(tally.shed, 2);
    EXPECT_EQ(tally.offered, drained(queue) + tally.conflated + tally.shed);
  }

  // Deterministic mixed sweep: interleaved keys (some empty), occasional
  // drains, and a tight bound, so conflates and sheds interleave freely.
  {
    ConflatingDeliveryQueue queue;
    Tally tally;
    int64_t popped = 0;
    const char* keys[] = {"a", "b", "", "c", "a", "", "b", "a"};
    for (int i = 0; i < 200; ++i) {
      tally.Count(
          queue.Offer(Payload("p"), Keyed(keys[i % 8], 1 + i / 3), i % 5 != 4, 3).outcome);
      if (i % 7 == 6 && !queue.empty()) {
        queue.PopFront();
        popped += 1;
      }
    }
    EXPECT_GT(tally.conflated, 0);
    EXPECT_GT(tally.shed, 0);
    EXPECT_EQ(tally.offered, popped + drained(queue) + tally.conflated + tally.shed);
  }
}

// ---- cluster-level overload tests ----

struct TestCluster {
  std::unique_ptr<BladerunnerCluster> cluster;
  SocialGraph graph;
};

TestCluster MakeCluster(ClusterConfig config, Topology topology) {
  TestCluster out;
  out.cluster = std::make_unique<BladerunnerCluster>(std::move(config), std::move(topology));
  SocialGraphConfig graph_config;
  graph_config.num_users = 20;
  graph_config.num_videos = 2;
  graph_config.num_threads = 4;
  out.graph =
      GenerateSocialGraph(out.cluster->tao(), out.cluster->sim().rng(), graph_config);
  out.cluster->sim().RunFor(Seconds(2));  // let setup writes replicate
  return out;
}

std::unique_ptr<DeviceAgent> MakeDevice(TestCluster& tc, size_t user_index,
                                        RegionId region = 0) {
  return std::make_unique<DeviceAgent>(tc.cluster.get(), tc.graph.users[user_index], region,
                                       DeviceProfile::kWifi);
}

// Rapid typing toggles on one (thread, typist) key conflate down to a few
// paced pushes, and the stream ends on the latest typing state.
TEST(OverloadClusterTest, TypingTogglesConflateToLatestState) {
  ClusterConfig config;
  config.seed = 1234;
  config.apps.typing.backend_check = false;
  config.brass.overload.min_push_gap = Millis(500);
  TestCluster tc = MakeCluster(std::move(config), Topology::OneRegion());

  ObjectId thread = tc.graph.threads[0];
  const auto& members = tc.graph.thread_members[thread];
  ASSERT_GE(members.size(), 2u);
  auto watcher =
      std::make_unique<DeviceAgent>(tc.cluster.get(), members[0], 0, DeviceProfile::kWifi);
  auto typist =
      std::make_unique<DeviceAgent>(tc.cluster.get(), members[1], 0, DeviceProfile::kWifi);

  std::vector<Value> received;
  watcher->set_payload_hook([&](uint64_t, const Value& payload) {
    if (payload.Get("__type").AsString() == "TypingIndicator") {
      received.push_back(payload);
    }
  });
  watcher->SubscribeTyping(thread);
  tc.cluster->sim().RunFor(Seconds(3));

  const int kToggles = 10;
  for (int i = 0; i < kToggles; ++i) {
    typist->SetTyping(thread, i % 2 == 0);  // last toggle (i=9) is "false"
    tc.cluster->sim().RunFor(Millis(100));
  }
  tc.cluster->sim().RunFor(Seconds(5));

  ASSERT_GE(received.size(), 1u);
  // Pacing + conflation: strictly fewer pushes than toggles, with at least
  // one coalesced update.
  EXPECT_LT(received.size(), static_cast<size_t>(kToggles));
  EXPECT_GE(tc.cluster->metrics().GetCounter("brass.conflated.TI").value(), 1);
  // Newest-version-wins: pushed states are ordered by event creation time,
  // and the stream ends on the final typing state.
  for (size_t i = 1; i < received.size(); ++i) {
    EXPECT_GE(received[i].Get("_createdAt").AsInt(0),
              received[i - 1].Get("_createdAt").AsInt(0));
  }
  EXPECT_FALSE(received.back().Get("typing").AsBool(true));
}

// The router must not place new streams on a host that is mid-drain, while
// the draining host keeps serving its existing streams for the grace period.
TEST(OverloadClusterTest, RouterSkipsDrainingHost) {
  ClusterConfig config;
  config.seed = 77;
  config.brass_hosts_per_region = 2;
  TestCluster tc = MakeCluster(std::move(config), Topology::OneRegion());

  auto first = MakeDevice(tc, 0);
  first->SubscribeLvc(tc.graph.videos[0]);
  tc.cluster->sim().RunFor(Seconds(3));

  size_t draining_index = tc.cluster->brass_host(0).StreamCount() > 0 ? 0 : 1;
  BrassHost& draining = tc.cluster->brass_host(draining_index);
  BrassHost& other = tc.cluster->brass_host(1 - draining_index);
  ASSERT_EQ(draining.StreamCount(), 1u);

  draining.StartDrain(Seconds(5));
  auto second = MakeDevice(tc, 1);
  second->SubscribeLvc(tc.graph.videos[0]);
  tc.cluster->sim().RunFor(Seconds(3));

  // During the grace period: the new stream landed on the healthy host and
  // the draining host still serves its existing stream.
  EXPECT_TRUE(draining.draining());
  EXPECT_TRUE(draining.alive());
  EXPECT_EQ(draining.StreamCount(), 1u);
  EXPECT_EQ(other.StreamCount(), 1u);

  tc.cluster->sim().RunFor(Seconds(10));  // grace expires; client repairs
  EXPECT_EQ(draining.StreamCount(), 0u);
  EXPECT_EQ(other.StreamCount(), 2u);
}

// With every host at its stream budget the router first spills across
// regions, then rejects; rejected devices retry and are admitted once a
// slot frees.
TEST(OverloadClusterTest, AdmissionSpillsThenRejectsThenRecovers) {
  ClusterConfig config;
  config.seed = 99;
  config.brass_hosts_per_region = 1;
  config.brass.overload.max_streams_per_host = 1;
  TestCluster tc = MakeCluster(std::move(config), Topology::ThreeRegions());
  ASSERT_EQ(tc.cluster->NumBrassHosts(), 3u);

  auto total_streams = [&] {
    size_t total = 0;
    for (size_t i = 0; i < tc.cluster->NumBrassHosts(); ++i) {
      total += tc.cluster->brass_host(i).StreamCount();
    }
    return total;
  };

  // All devices live in region 0, so the 2nd and 3rd stream must spill out
  // of the preferred region to stay under the per-host budget.
  std::vector<std::unique_ptr<DeviceAgent>> devices;
  std::vector<uint64_t> sids;
  for (size_t i = 0; i < 3; ++i) {
    devices.push_back(MakeDevice(tc, i, /*region=*/0));
    sids.push_back(devices.back()->SubscribeLvc(tc.graph.videos[0]));
    tc.cluster->sim().RunFor(Seconds(1));
  }
  tc.cluster->sim().RunFor(Seconds(3));
  EXPECT_EQ(total_streams(), 3u);
  for (size_t i = 0; i < tc.cluster->NumBrassHosts(); ++i) {
    EXPECT_LE(tc.cluster->brass_host(i).StreamCount(), 1u);
  }
  EXPECT_GE(tc.cluster->metrics().GetCounter("brass.router_spills").value(), 1);

  // A 4th subscription finds every host saturated: redirect-rejected at the
  // proxy, and the device keeps retrying on backoff without being admitted.
  devices.push_back(MakeDevice(tc, 3, /*region=*/0));
  devices.back()->SubscribeLvc(tc.graph.videos[0]);
  tc.cluster->sim().RunFor(Seconds(5));
  EXPECT_EQ(total_streams(), 3u);
  EXPECT_GE(tc.cluster->metrics().GetCounter("brass.router_saturated_rejections").value(), 1);
  EXPECT_GE(tc.cluster->metrics().GetCounter("burst.proxy_admission_redirects").value(), 1);

  // Freeing one slot lets the rejected device in on its next retry.
  devices[0]->CancelStream(sids[0]);
  tc.cluster->sim().RunFor(Seconds(12));  // cancel + redirect backoff (<= 3 s)
  EXPECT_EQ(total_streams(), 3u);
}

// A 10x hot-topic spike on one LVC stream: the bounded queue sheds, the
// stream degrades to polling (device falls back to the query loop), and
// once the spike subsides the stream resumes.
TEST(OverloadClusterTest, HotTopicSpikeDegradesToPollAndRecovers) {
  ClusterConfig config;
  config.seed = 4242;
  config.brass_hosts_per_region = 1;
  config.apps.lvc.placement = BrassPlacement::kDeviceFirehose;  // every comment pushes
  config.brass.overload.min_push_gap = Millis(500);
  config.brass.overload.max_pending_per_stream = 4;
  config.brass.overload.degrade_min_sheds = 4;
  config.brass.overload.degrade_shed_fraction = 0.25;
  config.brass.overload.shed_window = Seconds(2);
  config.brass.overload.recover_check_interval = Seconds(2);
  TestCluster tc = MakeCluster(std::move(config), Topology::OneRegion());

  auto viewer = MakeDevice(tc, 0);
  auto poster = MakeDevice(tc, 1);
  viewer->set_fallback_poll_interval(Millis(500));
  ObjectId video = tc.graph.videos[0];
  viewer->SubscribeLvc(video);
  tc.cluster->sim().RunFor(Seconds(3));

  // Spike: 80 distinct comments in 4 s — an order of magnitude over the
  // 2/s push budget, and distinct conflation keys so the queue must shed.
  // (Comments index ~1.8 s after posting, so the spike must outlast the
  // ranking delay for fallback polls to observe indexed comments.)
  for (int i = 0; i < 80; ++i) {
    poster->PostComment(video, "spike comment", tc.graph.language[poster->user()]);
    tc.cluster->sim().RunFor(Millis(50));
  }

  // Mid-spike: the queue bound held, sheds happened, and the stream
  // degraded; the device switched to the polling fallback and is seeing
  // comments through it.
  EXPECT_LE(tc.cluster->metrics().GetHistogram("brass.delivery_queue_depth").max(), 4.0);
  EXPECT_GE(tc.cluster->metrics().GetCounter("brass.shed.LVC").value(), 1);
  EXPECT_GE(tc.cluster->metrics().GetCounter("brass.degrade_signals").value(), 1);
  EXPECT_GE(viewer->degrade_to_poll_signals(), 1u);
  EXPECT_EQ(viewer->active_fallback_pollers(), 1u);
  EXPECT_GE(viewer->fallback_polls(), 1u);
  EXPECT_GE(viewer->fallback_comments(), 1u);

  // Spike over: offered load subsides, the host signals resume, and the
  // device stops polling.
  tc.cluster->sim().RunFor(Seconds(10));
  EXPECT_GE(tc.cluster->metrics().GetCounter("brass.recover_signals").value(), 1);
  EXPECT_GE(viewer->resume_stream_signals(), 1u);
  EXPECT_EQ(viewer->active_fallback_pollers(), 0u);
}

// ---- Pylon publish-side backpressure ----

// Drives a PylonCluster directly with fake subscriber hosts (pylon_test.cpp
// idiom) so the pending-send pipeline can be saturated deterministically.
class PylonBackpressureTest : public ::testing::Test {
 protected:
  PylonBackpressureTest() : topology_(Topology::ThreeRegions()), sim_(11) {
    PylonConfig config;
    config.servers_per_region = 2;
    config.kv_nodes_per_region = 2;
    config.max_pending_fanout_sends = 4;
    cluster_ = std::make_unique<PylonCluster>(&sim_, &topology_, config, &metrics_, &trace_);
    cluster_->SetPriorityResolver([](const std::string& prefix) {
      if (prefix == "Mailbox") {
        return BrassPriorityClass::kHigh;
      }
      if (prefix == "TI") {
        return BrassPriorityClass::kLow;
      }
      return BrassPriorityClass::kNormal;
    });
  }

  // Registers a fake BRASS host that records which topics reach it.
  void AddHost(int64_t host_id) {
    auto host = std::make_unique<FakeHost>();
    host->rpc.RegisterMethod("brass.event",
                             [raw = host.get()](MessagePtr request, RpcServer::Respond respond) {
                               auto delivery = std::static_pointer_cast<BrassEventDelivery>(request);
                               raw->received.push_back(delivery->event->topic);
                               respond(std::make_shared<PylonAck>());
                             });
    cluster_->RegisterSubscriberHost(host_id, 0, &host->rpc);
    hosts_[host_id] = std::move(host);
  }

  bool Subscribe(const Topic& topic, int64_t host_id) {
    PylonServer* server = cluster_->RouteServer(topic);
    RpcChannel channel(&sim_, server->rpc(), LatencyModel::IntraRegion());
    auto request = std::make_shared<PylonSubscribeRequest>();
    request->topic = topic;
    request->host_id = host_id;
    request->subscribe = true;
    bool ok = false;
    channel.Call("pylon.subscribe", request, [&](RpcStatus status, MessagePtr response) {
      ok = status == RpcStatus::kOk && std::static_pointer_cast<PylonAck>(response)->ok;
    });
    sim_.RunFor(Seconds(3));
    return ok;
  }

  void Publish(const Topic& topic) {
    PylonServer* server = cluster_->RouteServer(topic);
    RpcChannel channel(&sim_, server->rpc(), LatencyModel::IntraRegion());
    auto event = std::make_shared<UpdateEvent>();
    event->topic = topic;
    event->event_id = next_event_id_++;
    event->created_at = sim_.Now();
    auto request = std::make_shared<PylonPublishRequest>();
    request->event = std::move(event);
    channel.Call("pylon.publish", request, [](RpcStatus, MessagePtr) {});
  }

  size_t ReceivedCount(int64_t host_id, const Topic& topic) {
    size_t count = 0;
    for (const Topic& t : hosts_[host_id]->received) {
      if (t == topic) {
        ++count;
      }
    }
    return count;
  }

  struct FakeHost {
    RpcServer rpc;
    std::vector<Topic> received;
  };

  Topology topology_;
  Simulator sim_;
  MetricsRegistry metrics_;
  TraceCollector trace_;
  std::unique_ptr<PylonCluster> cluster_;
  std::map<int64_t, std::unique_ptr<FakeHost>> hosts_;
  uint64_t next_event_id_ = 1;
};

TEST_F(PylonBackpressureTest, HighPriorityPublishShedsLowPriorityPendingSends) {
  // Pick a Mailbox topic homed on the same Pylon server as the TI topic:
  // the pending-send pipeline (and its bound) is per server.
  const Topic ti_topic = "/TI/1/1";
  PylonServer* ti_server = cluster_->RouteServer(ti_topic);
  Topic mailbox_topic;
  for (int k = 1; k < 500; ++k) {
    Topic candidate = MailboxTopic(k);
    if (cluster_->RouteServer(candidate) == ti_server) {
      mailbox_topic = candidate;
      break;
    }
  }
  ASSERT_FALSE(mailbox_topic.empty());

  // 6 low-priority subscribers vs a pending cap of 4, plus 2 high-priority
  // subscribers published immediately behind them.
  for (int64_t id = 601; id <= 606; ++id) {
    AddHost(id);
    ASSERT_TRUE(Subscribe(ti_topic, id));
  }
  for (int64_t id = 701; id <= 702; ++id) {
    AddHost(id);
    ASSERT_TRUE(Subscribe(mailbox_topic, id));
  }

  Publish(ti_topic);
  Publish(mailbox_topic);
  sim_.RunFor(Seconds(3));

  // High priority is never shed: both Mailbox subscribers got the event.
  EXPECT_EQ(ReceivedCount(701, mailbox_topic), 1u);
  EXPECT_EQ(ReceivedCount(702, mailbox_topic), 1u);
  EXPECT_EQ(metrics_.GetCounter("pylon.fanout_shed.high").value(), 0);

  // The TI fanout (6 sends) overflowed the 4-slot pipeline, and the Mailbox
  // sends each displaced a pending low-priority send: 4 low sheds total,
  // leaving exactly 2 TI deliveries.
  EXPECT_EQ(metrics_.GetCounter("pylon.fanout_shed.low").value(), 4);
  EXPECT_EQ(metrics_.GetCounter("pylon.fanout_shed").value(), 4);
  size_t ti_delivered = 0;
  for (int64_t id = 601; id <= 606; ++id) {
    ti_delivered += ReceivedCount(id, ti_topic);
  }
  EXPECT_EQ(ti_delivered, 2u);
  EXPECT_GE(metrics_.GetHistogram("pylon.fanout_pending_depth").max(), 4.0);
}

}  // namespace
}  // namespace bladerunner
