// Unit tests for src/livequery: delta fold correctness for the supported
// view shapes (range insert/remove/reorder, counter deltas), out-of-order
// shard sequences, delete-before-insert annihilation (exact (id2, time)
// matching, so re-adds are never falsely annihilated), deletes of
// pre-registration edges, unsupported-shape fallback (including object-edit
// re-execution), net-change-only publishing, registration planning, and the
// per-shard mutation sequence stamp.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/cluster.h"
#include "src/core/device.h"
#include "src/livequery/engine.h"
#include "src/livequery/plan.h"
#include "src/livequery/schema.h"
#include "src/was/resolvers.h"

namespace bladerunner {
namespace {

struct PublishedOp {
  Topic topic;
  Value metadata;
};

class LiveQueryTest : public ::testing::Test {
 protected:
  LiveQueryTest() : topology_(Topology::OneRegion()), sim_(77) { Init(); }

  void Init(LiveQueryConfig config = MakeEnabled()) {
    engine_.reset();
    was_.reset();
    tao_.reset();
    published_.clear();
    tao_ = std::make_unique<TaoStore>(&sim_, &topology_, TaoConfig{}, &metrics_);
    was_ = std::make_unique<WebAppServer>(&sim_, 0, tao_.get(), nullptr, WasConfig{}, &metrics_,
                                          nullptr);
    InstallSocialSchema(*was_);
    engine_ = std::make_unique<LiveQueryEngine>(&sim_, tao_.get(), was_.get(), config, &metrics_);
    engine_->set_publish_hook([this](const Topic& topic, const Value& metadata) {
      published_.push_back(PublishedOp{topic, metadata});
    });

    alice_ = CreateUser(*tao_, "alice", "en");
    bob_ = CreateUser(*tao_, "bob", "en");
    video_ = CreateVideo(*tao_, alice_, "the video");
    sim_.RunFor(Seconds(1));
  }

  static LiveQueryConfig MakeEnabled() {
    LiveQueryConfig config;
    config.enabled = true;
    return config;
  }

  // Registers a comment-feed range view with the given window.
  Topic RegisterFeed(size_t limit) {
    LiveQueryRegistration reg;
    reg.topic = LiveFeedTopic(video_);
    reg.viewer = alice_;
    reg.query = "{ comments(video: " + std::to_string(video_) +
                ", first: " + std::to_string(limit) + ") { id text author time } }";
    std::string error;
    EXPECT_TRUE(engine_->Register(reg, &error)) << error;
    return reg.topic;
  }

  Topic RegisterCount(ObjectId post) {
    LiveQueryRegistration reg;
    reg.topic = LiveCountTopic(post);
    reg.viewer = alice_;
    reg.query = "{ likeCount(post: " + std::to_string(post) + ") }";
    std::string error;
    EXPECT_TRUE(engine_->Register(reg, &error)) << error;
    return reg.topic;
  }

  // Posts a comment directly to TAO (object + serving-index edge) and lets
  // the change stream deliver. Returns the comment object id.
  ObjectId PostComment(const std::string& text, UserId author) {
    Object comment;
    comment.otype = "comment";
    comment.data.Set("text", text);
    comment.data.Set("author", author);
    comment.data.Set("video", video_);
    comment.data.Set("time", sim_.Now());
    ObjectId id = tao_->PutObject(std::move(comment));
    Assoc edge;
    edge.id1 = video_;
    edge.atype = AssocType::kComment;
    edge.id2 = id;
    edge.data.Set("author", author);
    tao_->AddAssoc(std::move(edge));
    sim_.RunFor(Millis(10));  // deliver deltas; also spaces index times
    return id;
  }

  std::vector<const PublishedOp*> OpsFor(const Topic& topic) const {
    std::vector<const PublishedOp*> ops;
    for (const PublishedOp& op : published_) {
      if (op.topic == topic) {
        ops.push_back(&op);
      }
    }
    return ops;
  }

  int64_t CounterValue(const std::string& name) { return metrics_.GetCounter(name).value(); }

  Topology topology_;
  Simulator sim_;
  MetricsRegistry metrics_;
  std::unique_ptr<TaoStore> tao_;
  std::unique_ptr<WebAppServer> was_;
  std::unique_ptr<LiveQueryEngine> engine_;
  std::vector<PublishedOp> published_;
  UserId alice_ = 0;
  UserId bob_ = 0;
  ObjectId video_ = 0;
};

TEST_F(LiveQueryTest, PlansSupportedShapes) {
  PlanResult range = AnalyzeLiveQuery("{ comments(video: 7, first: 10) { id text } }");
  ASSERT_TRUE(range.ok) << range.error;
  EXPECT_EQ(range.plan.shape, LiveQueryShape::kAssocRange);
  EXPECT_EQ(range.plan.anchor, 7);
  EXPECT_EQ(range.plan.limit, 10u);

  PlanResult count = AnalyzeLiveQuery("{ likeCount(post: 9) }");
  ASSERT_TRUE(count.ok) << count.error;
  EXPECT_EQ(count.plan.shape, LiveQueryShape::kAssocCount);

  // Pagination beyond the window head falls back to re-execution.
  PlanResult paginated = AnalyzeLiveQuery("{ comments(video: 7, after: 5) { id } }");
  ASSERT_TRUE(paginated.ok) << paginated.error;
  EXPECT_EQ(paginated.plan.shape, LiveQueryShape::kReExecute);

  PlanResult unknown = AnalyzeLiveQuery("{ somethingElse(x: 1) { id } }");
  EXPECT_FALSE(unknown.ok);
  EXPECT_NE(unknown.error.find("unsupported live-query root field"), std::string::npos);
}

TEST_F(LiveQueryTest, RangeInsertFoldMatchesStoreAndPublishesInOrder) {
  Topic topic = RegisterFeed(10);
  ObjectId c1 = PostComment("first", alice_);
  ObjectId c2 = PostComment("second", bob_);
  ObjectId c3 = PostComment("third", alice_);

  // Newest-first insert ops, each at index 0 as it arrives.
  auto ops = OpsFor(topic);
  ASSERT_EQ(ops.size(), 3u);
  for (const PublishedOp* op : ops) {
    EXPECT_EQ(op->metadata.Get("op").AsString(), "insert");
    EXPECT_EQ(op->metadata.Get("index").AsInt(-1), 0);
  }
  EXPECT_EQ(ops[0]->metadata.Get("id").AsInt(0), c1);
  EXPECT_EQ(ops[1]->metadata.Get("id").AsInt(0), c2);
  EXPECT_EQ(ops[2]->metadata.Get("id").AsInt(0), c3);
  // viewSeq is strictly increasing per view.
  EXPECT_LT(ops[0]->metadata.Get("viewSeq").AsInt(0), ops[1]->metadata.Get("viewSeq").AsInt(0));
  EXPECT_LT(ops[1]->metadata.Get("viewSeq").AsInt(0), ops[2]->metadata.Get("viewSeq").AsInt(0));
  // Satellite: shard/shardSeq stamps ride in the op metadata.
  EXPECT_GT(ops[2]->metadata.Get("shardSeq").AsInt(0), 0);

  std::string diagnostic;
  EXPECT_TRUE(engine_->AuditView(topic, &diagnostic)) << diagnostic;
  // The maintained state matches a from-scratch recompute byte for byte.
  std::string state = engine_->ViewStateJson(topic);
  EXPECT_NE(state.find("\"third\""), std::string::npos);
  EXPECT_NE(state.find(std::to_string(c3)), std::string::npos);
}

TEST_F(LiveQueryTest, WindowTrimsToLimitAndRefillsOnDelete) {
  Topic topic = RegisterFeed(3);
  ObjectId c1 = PostComment("c1", alice_);
  PostComment("c2", alice_);
  ObjectId c3 = PostComment("c3", bob_);
  PostComment("c4", bob_);
  ObjectId c5 = PostComment("c5", alice_);

  // Window holds the newest 3; audit agrees with the store.
  std::string diagnostic;
  EXPECT_TRUE(engine_->AuditView(topic, &diagnostic)) << diagnostic;
  std::string state = engine_->ViewStateJson(topic);
  EXPECT_EQ(state.find("\"c1\""), std::string::npos);
  EXPECT_NE(state.find("\"c5\""), std::string::npos);

  // Deleting inside the window refills from the store (c2 re-enters).
  published_.clear();
  int64_t refills_before = CounterValue("livequery.refills");
  tao_->DeleteAssoc(video_, AssocType::kComment, c3);
  sim_.RunFor(Millis(10));
  EXPECT_EQ(CounterValue("livequery.refills"), refills_before + 1);
  auto ops = OpsFor(topic);
  ASSERT_FALSE(ops.empty());
  bool saw_remove = false;
  for (const PublishedOp* op : ops) {
    if (op->metadata.Get("op").AsString() == "remove") {
      saw_remove = true;
      EXPECT_EQ(op->metadata.Get("id").AsInt(0), c3);
    }
  }
  EXPECT_TRUE(saw_remove);
  EXPECT_TRUE(engine_->AuditView(topic, &diagnostic)) << diagnostic;
  EXPECT_NE(engine_->ViewStateJson(topic).find("\"c2\""), std::string::npos);

  // Deleting below the window is a net no-op: nothing published.
  published_.clear();
  int64_t suppressed_before = CounterValue("livequery.suppressed");
  tao_->DeleteAssoc(video_, AssocType::kComment, c1);
  sim_.RunFor(Millis(10));
  EXPECT_TRUE(OpsFor(topic).empty());
  EXPECT_EQ(CounterValue("livequery.suppressed"), suppressed_before + 1);
  EXPECT_TRUE(engine_->AuditView(topic, &diagnostic)) << diagnostic;
  (void)c5;
}

TEST_F(LiveQueryTest, ReplayedOldEdgeBelowFullWindowIsSuppressed) {
  // Three comments exist before the view registers; the window snapshot
  // holds only the newest two.
  ObjectId c_old = PostComment("oldest", alice_);
  SimTime old_time = sim_.Now() - Millis(10);  // c_old's index time
  PostComment("new1", alice_);
  PostComment("new2", bob_);
  Topic topic = RegisterFeed(2);

  // A replayed change-stream delta for the trimmed entry (e.g. a resumed
  // stream re-delivering history) lands below the full window: no net
  // change, nothing published.
  published_.clear();
  int64_t suppressed_before = CounterValue("livequery.suppressed");
  TaoDelta replay;
  replay.kind = TaoMutationKind::kAssocAdd;
  replay.id = video_;
  replay.atype = AssocType::kComment;
  replay.id2 = c_old;
  replay.time = old_time;
  replay.shard = tao_->ShardOf(video_);
  replay.shard_seq = 1000;
  replay.committed_at = sim_.Now();
  engine_->InjectDelta(replay);

  EXPECT_TRUE(OpsFor(topic).empty());
  EXPECT_GT(CounterValue("livequery.suppressed"), suppressed_before);
  std::string diagnostic;
  EXPECT_TRUE(engine_->AuditView(topic, &diagnostic)) << diagnostic;
}

TEST_F(LiveQueryTest, EditFoldsToUpdateOpWithoutReads) {
  Topic topic = RegisterFeed(5);
  ObjectId c1 = PostComment("before edit", alice_);
  published_.clear();

  auto existing = tao_->GetObject(0, c1, nullptr);
  ASSERT_TRUE(existing.has_value());
  Object edited = *existing;
  edited.data.Set("text", "after edit");
  tao_->PutObject(std::move(edited));
  sim_.RunFor(Millis(10));

  auto ops = OpsFor(topic);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0]->metadata.Get("op").AsString(), "update");
  EXPECT_EQ(ops[0]->metadata.Get("id").AsInt(0), c1);
  EXPECT_EQ(ops[0]->metadata.Get("version").AsInt(0), 2);
  std::string diagnostic;
  EXPECT_TRUE(engine_->AuditView(topic, &diagnostic)) << diagnostic;
  EXPECT_NE(engine_->ViewStateJson(topic).find("after edit"), std::string::npos);
}

TEST_F(LiveQueryTest, OutOfOrderShardSequencesAreCountedAndVersionGuarded) {
  Topic topic = RegisterFeed(5);
  ObjectId c1 = PostComment("v1 text", alice_);
  published_.clear();

  // A stale object delta (lower version than the row already holds)
  // arriving after a newer one must not regress the view.
  auto object = tao_->GetObject(0, c1, nullptr);
  ASSERT_TRUE(object.has_value());
  int shard = tao_->ShardOf(c1);
  int64_t out_of_order_before = CounterValue("livequery.out_of_order");

  TaoDelta newer;
  newer.kind = TaoMutationKind::kObjectPut;
  newer.id = c1;
  newer.version = 3;
  newer.data = object->data;
  newer.data.Set("text", "v3 text");
  newer.shard = shard;
  newer.shard_seq = 100;
  newer.committed_at = sim_.Now();
  engine_->InjectDelta(newer);

  TaoDelta stale = newer;
  stale.version = 2;
  stale.data.Set("text", "v2 text");
  stale.shard_seq = 99;  // arrives after seq 100: out of order
  engine_->InjectDelta(stale);

  EXPECT_EQ(CounterValue("livequery.out_of_order"), out_of_order_before + 1);
  std::string state = engine_->ViewStateJson(topic);
  EXPECT_NE(state.find("v3 text"), std::string::npos);
  EXPECT_EQ(state.find("v2 text"), std::string::npos);
  // Exactly one net change published (the stale delta was suppressed).
  ASSERT_EQ(OpsFor(topic).size(), 1u);
  EXPECT_EQ(OpsFor(topic)[0]->metadata.Get("op").AsString(), "update");
}

TEST_F(LiveQueryTest, DeleteBeforeInsertAnnihilates) {
  Topic topic = RegisterFeed(5);
  published_.clear();

  // A tombstone can replicate ahead of the entry it deletes; the late add
  // must annihilate against the pending remove instead of inserting.
  ObjectId ghost = 987654;
  int shard = tao_->ShardOf(video_);
  TaoDelta remove;
  remove.kind = TaoMutationKind::kAssocDelete;
  remove.id = video_;
  remove.atype = AssocType::kComment;
  remove.id2 = ghost;
  remove.time = sim_.Now();
  remove.shard = shard;
  remove.shard_seq = 50;
  remove.committed_at = sim_.Now();
  engine_->InjectDelta(remove);

  TaoDelta add = remove;
  add.kind = TaoMutationKind::kAssocAdd;
  add.shard_seq = 51;
  engine_->InjectDelta(add);

  EXPECT_TRUE(OpsFor(topic).empty());
  std::string diagnostic;
  EXPECT_TRUE(engine_->AuditView(topic, &diagnostic)) << diagnostic;
  EXPECT_EQ(engine_->ViewStateJson(topic), "{\"rows\":[]}");
}

TEST_F(LiveQueryTest, CounterFoldsDeleteOfPreRegistrationEdge) {
  // Edges that exist before the view registers are part of the snapshot
  // count but were never delivered as deltas; deleting one must still
  // decrement instead of parking a never-matched pending remove.
  auto like = [this](UserId user) {
    Assoc edge;
    edge.id1 = video_;
    edge.atype = AssocType::kLike;
    edge.id2 = user;
    tao_->AddAssoc(std::move(edge));
    sim_.RunFor(Millis(10));
  };
  like(alice_);
  like(bob_);
  Topic topic = RegisterCount(video_);
  EXPECT_EQ(engine_->ViewStateJson(topic), "{\"count\":2}");

  published_.clear();
  tao_->DeleteAssoc(video_, AssocType::kLike, alice_);
  sim_.RunFor(Millis(10));
  auto ops = OpsFor(topic);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0]->metadata.Get("count").AsInt(-1), 1);
  EXPECT_EQ(engine_->PendingRemoveCount(topic), 0u);
  std::string diagnostic;
  EXPECT_TRUE(engine_->AuditView(topic, &diagnostic)) << diagnostic;

  // A later re-like by the same user is a brand-new edge, not an
  // annihilation target: the count climbs back and stays auditable.
  like(alice_);
  EXPECT_EQ(engine_->ViewStateJson(topic), "{\"count\":2}");
  EXPECT_TRUE(engine_->AuditView(topic, &diagnostic)) << diagnostic;
}

TEST_F(LiveQueryTest, RangeFoldsDeleteOfPreRegistrationEntryBelowWindow) {
  // Three comments predate registration; the 2-row window never saw the
  // oldest. Its delete is a net no-op and must not park a tombstone.
  ObjectId c1 = PostComment("pre1", alice_);
  PostComment("pre2", alice_);
  PostComment("pre3", bob_);
  Topic topic = RegisterFeed(2);

  published_.clear();
  tao_->DeleteAssoc(video_, AssocType::kComment, c1);
  sim_.RunFor(Millis(10));
  EXPECT_TRUE(OpsFor(topic).empty());
  EXPECT_EQ(engine_->PendingRemoveCount(topic), 0u);
  std::string diagnostic;
  EXPECT_TRUE(engine_->AuditView(topic, &diagnostic)) << diagnostic;
}

TEST_F(LiveQueryTest, DeleteThenReAddBelowWindowReentersWindow) {
  Topic topic = RegisterFeed(2);
  ObjectId c1 = PostComment("c1", alice_);
  PostComment("c2", alice_);
  PostComment("c3", bob_);

  // c1 sits below the 2-row window; its delete changes nothing and — since
  // its add was already delivered — leaves no pending tombstone behind.
  tao_->DeleteAssoc(video_, AssocType::kComment, c1);
  sim_.RunFor(Millis(10));
  EXPECT_EQ(engine_->PendingRemoveCount(topic), 0u);

  // TAO allows delete-then-re-add: the fresh edge (new index time) must
  // insert at the head of the window, not annihilate against the delete.
  published_.clear();
  Assoc edge;
  edge.id1 = video_;
  edge.atype = AssocType::kComment;
  edge.id2 = c1;
  tao_->AddAssoc(std::move(edge));
  sim_.RunFor(Millis(10));

  bool saw_insert = false;
  for (const PublishedOp* op : OpsFor(topic)) {
    if (op->metadata.Get("op").AsString() == "insert" && op->metadata.Get("id").AsInt(0) == c1) {
      saw_insert = true;
      EXPECT_EQ(op->metadata.Get("index").AsInt(-1), 0);
    }
  }
  EXPECT_TRUE(saw_insert);
  std::string diagnostic;
  EXPECT_TRUE(engine_->AuditView(topic, &diagnostic)) << diagnostic;
  EXPECT_NE(engine_->ViewStateJson(topic).find("\"c1\""), std::string::npos);
}

TEST_F(LiveQueryTest, PendingRemoveMatchesExactEntryNotJustId2) {
  Topic topic = RegisterFeed(5);
  published_.clear();

  // A tombstone for entry (ghost, t2) replicates ahead of its add while a
  // *different* edge to the same target, (ghost, t1), is also in flight.
  // The pending remove must annihilate only the exact (id2, time) entry.
  ObjectId ghost = 987654;
  SimTime t1 = sim_.Now() - Millis(5);
  SimTime t2 = sim_.Now();
  int shard = tao_->ShardOf(video_);
  TaoDelta remove;
  remove.kind = TaoMutationKind::kAssocDelete;
  remove.id = video_;
  remove.atype = AssocType::kComment;
  remove.id2 = ghost;
  remove.time = t2;
  remove.shard = shard;
  remove.shard_seq = 50;
  remove.committed_at = sim_.Now();
  engine_->InjectDelta(remove);
  EXPECT_EQ(engine_->PendingRemoveCount(topic), 1u);

  TaoDelta add_other = remove;
  add_other.kind = TaoMutationKind::kAssocAdd;
  add_other.time = t1;
  add_other.shard_seq = 51;
  engine_->InjectDelta(add_other);  // distinct entry: inserts
  auto ops = OpsFor(topic);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0]->metadata.Get("op").AsString(), "insert");
  EXPECT_EQ(ops[0]->metadata.Get("id").AsInt(0), ghost);
  EXPECT_EQ(engine_->PendingRemoveCount(topic), 1u);

  TaoDelta add_exact = remove;
  add_exact.kind = TaoMutationKind::kAssocAdd;
  add_exact.shard_seq = 52;
  engine_->InjectDelta(add_exact);  // exact match: annihilates silently
  EXPECT_EQ(OpsFor(topic).size(), 1u);
  EXPECT_EQ(engine_->PendingRemoveCount(topic), 0u);
}

TEST_F(LiveQueryTest, CounterViewFoldsAddsAndDeletes) {
  Topic topic = RegisterCount(video_);
  auto like = [this](UserId user) {
    Assoc edge;
    edge.id1 = video_;
    edge.atype = AssocType::kLike;
    edge.id2 = user;
    tao_->AddAssoc(std::move(edge));
    sim_.RunFor(Millis(10));
  };
  like(alice_);
  like(bob_);

  auto ops = OpsFor(topic);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0]->metadata.Get("op").AsString(), "count");
  EXPECT_EQ(ops[0]->metadata.Get("count").AsInt(0), 1);
  EXPECT_EQ(ops[1]->metadata.Get("count").AsInt(0), 2);

  published_.clear();
  tao_->DeleteAssoc(video_, AssocType::kLike, alice_);
  sim_.RunFor(Millis(10));
  ops = OpsFor(topic);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0]->metadata.Get("count").AsInt(0), 1);

  // The folded count matches the store's AssocCount exactly.
  EXPECT_EQ(engine_->ViewStateJson(topic),
            "{\"count\":" + std::to_string(tao_->AssocCount(0, video_, AssocType::kLike, nullptr)) +
                "}");
  std::string diagnostic;
  EXPECT_TRUE(engine_->AuditView(topic, &diagnostic)) << diagnostic;
}

TEST_F(LiveQueryTest, UnsupportedShapeFallsBackToReExecution) {
  MakeFriends(*tao_, alice_, bob_);
  sim_.RunFor(Seconds(1));
  LiveQueryRegistration reg;
  reg.topic = Topic("/LQFeed/byfriends");
  reg.viewer = alice_;
  reg.query = "{ commentsByFriends(video: " + std::to_string(video_) + ") { id text author } }";
  std::string error;
  ASSERT_TRUE(engine_->Register(reg, &error)) << error;
  const LiveQueryPlan* plan = engine_->PlanFor(reg.topic);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->shape, LiveQueryShape::kReExecute);

  int64_t fallback_before = CounterValue("livequery.fallback_reexecs");
  published_.clear();
  PostComment("friend comment", bob_);

  EXPECT_GT(CounterValue("livequery.fallback_reexecs"), fallback_before);
  auto ops = OpsFor(reg.topic);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0]->metadata.Get("op").AsString(), "invalidate");
  // The materialized fallback state equals a fresh execution.
  ExecResult fresh = was_->ExecuteNow(reg.query, alice_);
  EXPECT_EQ(engine_->ViewStateJson(reg.topic), "{\"data\":" + fresh.data.ToJson() + "}");
  std::string diagnostic;
  EXPECT_TRUE(engine_->AuditView(reg.topic, &diagnostic)) << diagnostic;

  // A re-executed result that does not change publishes nothing: alice's
  // own comment is invisible to the by-friends view (she is not her own
  // friend), so the fallback result is unchanged.
  published_.clear();
  PostComment("self comment", alice_);
  EXPECT_TRUE(OpsFor(reg.topic).empty());
}

TEST_F(LiveQueryTest, FallbackViewReExecutesOnObjectEdit) {
  MakeFriends(*tao_, alice_, bob_);
  sim_.RunFor(Seconds(1));
  LiveQueryRegistration reg;
  reg.topic = Topic("/LQFeed/byfriends");
  reg.viewer = alice_;
  reg.query = "{ commentsByFriends(video: " + std::to_string(video_) + ") { id text author } }";
  std::string error;
  ASSERT_TRUE(engine_->Register(reg, &error)) << error;
  ObjectId comment = PostComment("before edit", bob_);
  published_.clear();

  // Editing the comment object touches no assoc list, only the object
  // itself. The fallback view tracks the ids in its last result, so the
  // object put must re-execute it rather than leave it stale.
  auto existing = tao_->GetObject(0, comment, nullptr);
  ASSERT_TRUE(existing.has_value());
  Object edited = *existing;
  edited.data.Set("text", "after edit");
  tao_->PutObject(std::move(edited));
  sim_.RunFor(Millis(10));

  auto ops = OpsFor(reg.topic);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0]->metadata.Get("op").AsString(), "invalidate");
  EXPECT_NE(engine_->ViewStateJson(reg.topic).find("after edit"), std::string::npos);
  std::string diagnostic;
  EXPECT_TRUE(engine_->AuditView(reg.topic, &diagnostic)) << diagnostic;
}

TEST_F(LiveQueryTest, RegisterRejectsSameTopicWithDifferentQuery) {
  Topic topic = RegisterFeed(5);
  LiveQueryRegistration other;
  other.topic = topic;
  other.viewer = bob_;
  other.query = "{ likeCount(post: " + std::to_string(video_) + ") }";
  std::string error;
  EXPECT_FALSE(engine_->Register(other, &error));
  EXPECT_NE(error.find("different query"), std::string::npos);
  // The original registration is untouched.
  const LiveQueryPlan* plan = engine_->PlanFor(topic);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->shape, LiveQueryShape::kAssocRange);
}

TEST_F(LiveQueryTest, RegistrationIsIdempotentPerTopic) {
  Topic topic = RegisterFeed(5);
  EXPECT_TRUE(engine_->IsRegistered(topic));
  int64_t snapshots_before = CounterValue("livequery.snapshots");
  Topic again = RegisterFeed(5);
  EXPECT_EQ(topic, again);
  EXPECT_EQ(CounterValue("livequery.snapshots"), snapshots_before);  // no re-snapshot
  EXPECT_EQ(engine_->Topics().size(), 1u);

  LiveQueryRegistration bad;
  bad.topic = Topic("/LQFeed/bad");
  bad.query = "{ nope(x: 1) { id } }";
  std::string error;
  EXPECT_FALSE(engine_->Register(bad, &error));
  EXPECT_NE(error.find("unsupported live-query root field"), std::string::npos);
  EXPECT_FALSE(engine_->IsRegistered(bad.topic));
}

TEST_F(LiveQueryTest, DisabledEngineObservesNothing) {
  LiveQueryConfig disabled;
  disabled.enabled = false;
  Init(disabled);
  Topic topic = RegisterFeed(5);  // registration still materializes a snapshot
  uint64_t events_before = sim_.events_executed();
  int64_t deltas_before = CounterValue("livequery.deltas");
  PostComment("unseen", alice_);
  // The disabled engine registered no change observer, so the writes
  // scheduled zero simulator events — the bit-identical guarantee — and no
  // deltas were seen. The view stays at its registration snapshot.
  EXPECT_TRUE(OpsFor(topic).empty());
  EXPECT_EQ(CounterValue("livequery.deltas"), deltas_before);
  EXPECT_EQ(sim_.events_executed(), events_before);
}

TEST_F(LiveQueryTest, MutationStampsArePerShardMonotonic) {
  ObjectId id = video_;
  int shard = tao_->ShardOf(id);
  uint64_t last_seq = 0;
  for (int i = 0; i < 4; ++i) {
    Assoc edge;
    edge.id1 = id;
    edge.atype = AssocType::kLike;
    edge.id2 = static_cast<ObjectId>(1000 + i);
    tao_->AddAssoc(std::move(edge));
    const TaoMutationStamp& stamp = tao_->last_stamp();
    EXPECT_EQ(stamp.shard, shard);
    EXPECT_GT(stamp.seq, last_seq);
    last_seq = stamp.seq;
  }
}

// Integration: a three-region store with modeled replication delays. The
// engine maintains views against its home region's visibility; after the
// stream quiesces the audit must agree with the store.
// Regression: the adapter parsed viewSeq with AsInt(0), so an op with a
// missing/malformed viewSeq became conflation version 0 and could silently
// lose to any queued op. It must be dropped and counted instead.
TEST(LiveQueryAdapterTest, MalformedViewSeqIsDroppedNotDeliveredAsVersionZero) {
  ClusterConfig config;
  config.seed = 311;
  config.livequery.enabled = true;
  BladerunnerCluster cluster(config);
  UserId viewer = CreateUser(cluster.tao(), "viewer", "en");
  ObjectId post = CreateVideo(cluster.tao(), viewer, "post");
  cluster.sim().RunFor(Seconds(2));

  DeviceAgent device(&cluster, viewer, 0, DeviceProfile::kWifi);
  uint64_t payloads = 0;
  device.set_payload_hook([&payloads](uint64_t, const Value&) { payloads += 1; });
  device.SubscribeRaw("LiveCount", "subscription { presenceCount(topicId: " +
                                       std::to_string(post) + ") }");
  cluster.sim().RunFor(Seconds(3));
  uint64_t baseline = payloads;

  // A malformed publish (no viewSeq) straight onto the view topic.
  PublishSpec bad;
  bad.topic = LiveCountTopic(post);
  bad.metadata.Set("op", "count");
  bad.metadata.Set("count", static_cast<int64_t>(5));
  cluster.was(0).PublishNow(bad, cluster.sim().Now());
  cluster.sim().RunFor(Seconds(2));
  EXPECT_EQ(cluster.metrics().GetCounter("livequery.invalid_view_seq").value(), 1);
  EXPECT_EQ(payloads, baseline);

  // A well-formed op still flows end to end.
  PublishSpec good;
  good.topic = LiveCountTopic(post);
  good.metadata.Set("op", "count");
  good.metadata.Set("count", static_cast<int64_t>(6));
  good.metadata.Set("viewSeq", static_cast<int64_t>(1));
  cluster.was(0).PublishNow(good, cluster.sim().Now());
  cluster.sim().RunFor(Seconds(2));
  EXPECT_EQ(cluster.metrics().GetCounter("livequery.invalid_view_seq").value(), 1);
  EXPECT_EQ(payloads, baseline + 1);
}

TEST(LiveQueryReplicationTest, ConvergesAcrossRegions) {
  Topology topology = Topology::ThreeRegions();
  Simulator sim(101);
  MetricsRegistry metrics;
  TaoStore tao(&sim, &topology, TaoConfig{}, &metrics);
  WebAppServer was(&sim, 1, &tao, nullptr, WasConfig{}, &metrics, nullptr);
  InstallSocialSchema(was);
  LiveQueryConfig config;
  config.enabled = true;
  config.home_region = 1;  // not the leader for most shards
  LiveQueryEngine engine(&sim, &tao, &was, config, &metrics);

  UserId author = CreateUser(tao, "author", "en");
  ObjectId video = CreateVideo(tao, author, "replicated video");
  sim.RunFor(Seconds(2));
  LiveQueryRegistration reg;
  reg.topic = LiveFeedTopic(video);
  reg.viewer = author;
  reg.query = "{ comments(video: " + std::to_string(video) + ", first: 10) { id text } }";
  std::string error;
  ASSERT_TRUE(engine.Register(reg, &error)) << error;

  std::vector<ObjectId> comments;
  for (int i = 0; i < 12; ++i) {
    Object comment;
    comment.otype = "comment";
    comment.data.Set("text", "r" + std::to_string(i));
    comment.data.Set("author", author);
    ObjectId id = tao.PutObject(std::move(comment));
    comments.push_back(id);
    Assoc edge;
    edge.id1 = video;
    edge.atype = AssocType::kComment;
    edge.id2 = id;
    tao.AddAssoc(std::move(edge));
    sim.RunFor(Millis(200));
  }
  tao.DeleteAssoc(video, AssocType::kComment, comments[10]);
  sim.RunFor(Seconds(30));  // replication + deltas quiesce

  EXPECT_GT(metrics.GetCounter("livequery.deltas").value(), 0);
  std::string diagnostic;
  EXPECT_TRUE(engine.AuditAll(&diagnostic)) << diagnostic;
  std::string state = engine.ViewStateJson(reg.topic);
  EXPECT_NE(state.find("\"r11\""), std::string::npos);
  EXPECT_EQ(state.find("\"r10\""), std::string::npos);  // deleted
}

}  // namespace
}  // namespace bladerunner
