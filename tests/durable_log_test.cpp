// Durable reliable-delivery tier: unit tests for the per-topic replayable
// log (src/burst/durable_log.h) and end-to-end exactly-once delivery tests
// for durable BURST streams across disconnects, POP failures, and
// reconnects that land mid-replay.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/burst/durable_log.h"
#include "src/core/cluster.h"
#include "src/core/device.h"
#include "src/sim/random.h"
#include "src/was/resolvers.h"

namespace bladerunner {
namespace {

Value Payload(int i) {
  Value v;
  v.Set("tick", static_cast<int64_t>(i));
  return v;
}

TEST(DurableLogTest, SequencesAreDenseAndMonotonic) {
  DurableTopicLog log{DurableLogConfig{}};
  for (int i = 1; i <= 100; ++i) {
    AppendResult r = log.Append(static_cast<uint64_t>(i), Payload(i), Micros(i));
    EXPECT_EQ(r.seq, static_cast<uint64_t>(i));
    EXPECT_FALSE(r.duplicate);
  }
  EXPECT_EQ(log.last_seq(), 100u);
  EXPECT_EQ(log.oldest_retained_seq(), 1u);
}

TEST(DurableLogTest, AppendIsIdempotentByEventId) {
  // The log is shared by every host an event fans out to; each host appends
  // on delivery, and only the first append may assign a sequence.
  DurableTopicLog log{DurableLogConfig{}};
  AppendResult first = log.Append(77, Payload(1), Micros(5));
  AppendResult again = log.Append(77, Payload(1), Micros(9));
  EXPECT_FALSE(first.duplicate);
  EXPECT_TRUE(again.duplicate);
  EXPECT_EQ(first.seq, again.seq);
  EXPECT_EQ(log.last_seq(), 1u);
  EXPECT_EQ(log.stats().appends, 1u);
  EXPECT_EQ(log.stats().duplicate_appends, 1u);
}

TEST(DurableLogTest, HotLogRotatesIntoColdSegmentsOnCount) {
  DurableLogConfig config;
  config.hot_log_max_entries = 8;
  config.max_cold_segments = 64;
  DurableTopicLog log(config);
  for (int i = 1; i <= 50; ++i) {
    log.Append(static_cast<uint64_t>(i), Payload(i), Micros(i));
  }
  EXPECT_GT(log.stats().rotations, 0u);
  EXPECT_EQ(log.stats().entries_dropped, 0u);
  // Rotation is invisible to readers: the full suffix replays in order.
  uint64_t cursor = 0;
  std::vector<uint64_t> seen;
  while (cursor < log.last_seq()) {
    ReadResult r = log.ReadAfter(cursor, 7);
    ASSERT_EQ(r.status, ReadStatus::kOk);
    ASSERT_FALSE(r.entries.empty());
    for (const DurableEntry* e : r.entries) {
      seen.push_back(e->seq);
      cursor = e->seq;
    }
  }
  ASSERT_EQ(seen.size(), 50u);
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], i + 1);
  }
}

TEST(DurableLogTest, HotLogRotatesOnBytes) {
  DurableLogConfig config;
  config.hot_log_max_entries = 1 << 20;  // never trips on count
  config.segment_max_bytes = 256;
  config.max_cold_segments = 64;
  DurableTopicLog log(config);
  for (int i = 1; i <= 200; ++i) {
    log.Append(static_cast<uint64_t>(i), Payload(i), Micros(i));
  }
  EXPECT_GT(log.stats().rotations, 0u);
  EXPECT_EQ(log.oldest_retained_seq(), 1u);
}

TEST(DurableLogTest, RetentionDropsOldestSegmentsAndReportsTruncation) {
  DurableLogConfig config;
  config.hot_log_max_entries = 4;
  config.max_cold_segments = 2;
  DurableTopicLog log(config);
  for (int i = 1; i <= 100; ++i) {
    log.Append(static_cast<uint64_t>(i), Payload(i), Micros(i));
  }
  EXPECT_GT(log.stats().segments_dropped, 0u);
  EXPECT_GT(log.stats().entries_dropped, 0u);
  uint64_t oldest = log.oldest_retained_seq();
  ASSERT_GT(oldest, 1u);

  // A cursor inside the dropped prefix is truncated...
  EXPECT_TRUE(log.Truncated(0));
  EXPECT_TRUE(log.Truncated(oldest - 2));
  // ...the boundary cursor (next read = oldest retained) and later are not.
  EXPECT_FALSE(log.Truncated(oldest - 1));
  EXPECT_FALSE(log.Truncated(log.last_seq()));

  // Reading a truncated cursor clamps to the oldest retained entry and
  // says so, so the server can surface a restart instead of silent loss.
  ReadResult r = log.ReadAfter(0, 4);
  EXPECT_EQ(r.status, ReadStatus::kTruncated);
  ASSERT_FALSE(r.entries.empty());
  EXPECT_EQ(r.entries[0]->seq, oldest);
}

TEST(DurableLogTest, ReadAfterRespectsBatchLimitAcrossSegmentBoundaries) {
  DurableLogConfig config;
  config.hot_log_max_entries = 5;
  config.max_cold_segments = 64;
  DurableTopicLog log(config);
  for (int i = 1; i <= 23; ++i) {
    log.Append(static_cast<uint64_t>(i), Payload(i), Micros(i));
  }
  ReadResult r = log.ReadAfter(2, 9);
  ASSERT_EQ(r.entries.size(), 9u);
  for (size_t i = 0; i < r.entries.size(); ++i) {
    EXPECT_EQ(r.entries[i]->seq, 3 + i);
  }
  // Caught-up cursor reads empty.
  EXPECT_TRUE(log.ReadAfter(23, 9).entries.empty());
}

// Property: for any interleaving of appends (with duplicate event ids) and
// reads, a reader that follows ReadAfter cursors sees exactly the retained
// suffix, in order, with no duplicates.
TEST(DurableLogTest, SeededReplayPropertyHolds) {
  Rng rng(1234);
  for (int round = 0; round < 20; ++round) {
    DurableLogConfig config;
    config.hot_log_max_entries = 1 + static_cast<size_t>(rng.Uniform(0, 16));
    config.max_cold_segments = 1 + static_cast<size_t>(rng.Uniform(0, 6));
    DurableTopicLog log(config);
    uint64_t next_event = 1;
    int appends = 50 + static_cast<int>(rng.Uniform(0, 200));
    for (int i = 0; i < appends; ++i) {
      uint64_t event_id = next_event;
      if (rng.Uniform(0, 1) < 0.2 && next_event > 1) {
        event_id = 1 + static_cast<uint64_t>(rng.Uniform(0, static_cast<double>(next_event - 1)));
      } else {
        next_event += 1;
      }
      log.Append(event_id, Payload(static_cast<int>(event_id)), Micros(i));
    }
    // Replay from scratch; a truncated start is allowed (and clamps), but
    // after that every batch must continue the sequence densely.
    uint64_t cursor = 0;
    uint64_t expected = 0;
    bool first = true;
    while (cursor < log.last_seq()) {
      size_t batch = 1 + static_cast<size_t>(rng.Uniform(0, 8));
      ReadResult r = log.ReadAfter(cursor, batch);
      ASSERT_FALSE(r.entries.empty());
      if (first) {
        expected = r.entries[0]->seq;
        EXPECT_EQ(expected, r.status == ReadStatus::kTruncated ? log.oldest_retained_seq() : 1u);
        first = false;
      }
      for (const DurableEntry* e : r.entries) {
        ASSERT_EQ(e->seq, expected);
        expected += 1;
        cursor = e->seq;
      }
    }
    EXPECT_EQ(expected, log.last_seq() + 1);
  }
}

TEST(DurableLogTest, DirectorySharesLogsByTopicAndAggregatesStats) {
  DurableLogDirectory directory(DurableLogConfig{});
  DurableTopicLog& a = directory.LogFor("/Ticker/1");
  DurableTopicLog& b = directory.LogFor("/Ticker/2");
  EXPECT_EQ(&directory.LogFor("/Ticker/1"), &a);
  EXPECT_NE(&a, &b);
  a.Append(1, Payload(1), Micros(1));
  b.Append(1, Payload(1), Micros(1));
  b.Append(2, Payload(2), Micros(2));
  EXPECT_EQ(directory.Totals().appends, 3u);
  EXPECT_EQ(directory.Find("/Ticker/3"), nullptr);
}

// ---- end-to-end: durable streams over the full cluster ----

class DurableStreamTest : public ::testing::Test {
 protected:
  void SetUp() override { Build(DurableLogConfig{}); }

  void Build(DurableLogConfig log_config) {
    ClusterConfig config;
    config.seed = 909;
    config.brass.durable_log = log_config;
    cluster_ = std::make_unique<BladerunnerCluster>(config);
    cluster_->sim().RunFor(Seconds(1));
  }

  // Publishes `count` ticks to channel 1 through region 0's WAS, one per
  // `gap`, starting now.
  void PublishTicks(int count, SimTime gap) {
    for (int i = 0; i < count; ++i) {
      cluster_->sim().Schedule(gap * i, [this]() {
        PublishSpec spec;
        spec.topic = TickerTopic(1);
        spec.metadata.Set("tick", static_cast<int64_t>(++published_));
        cluster_->was(0).PublishNow(spec, cluster_->sim().Now());
      });
    }
  }

  // Attaches the exactly-once audit to a device: records every durable
  // sequence seen (`_seq`, stamped by the BRASS host) and counts repeats.
  void Audit(DeviceAgent& device, std::multiset<uint64_t>* seqs) {
    device.set_payload_hook([seqs](uint64_t, const Value& payload) {
      const Value& seq = payload.Get("_seq");
      if (seq.is_int()) {
        seqs->insert(static_cast<uint64_t>(seq.AsInt(0)));
      }
    });
  }

  // Every sequence 1..last appears exactly once.
  void ExpectExactlyOnce(const std::multiset<uint64_t>& seqs, uint64_t last) {
    ASSERT_EQ(seqs.size(), last);
    uint64_t expected = 1;
    for (uint64_t s : seqs) {
      ASSERT_EQ(s, expected) << "gap or duplicate at sequence " << expected;
      expected += 1;
    }
  }

  std::unique_ptr<BladerunnerCluster> cluster_;
  int64_t published_ = 0;
};

TEST_F(DurableStreamTest, DeliversLiveTicksWithDenseSequences) {
  DeviceAgent device(cluster_.get(), 1, 0, DeviceProfile::kWifi);
  std::multiset<uint64_t> seqs;
  Audit(device, &seqs);
  device.SubscribeTicker(1);
  cluster_->sim().RunFor(Seconds(2));

  PublishTicks(20, Millis(100));
  cluster_->sim().RunFor(Seconds(5));
  ExpectExactlyOnce(seqs, 20);
  EXPECT_EQ(cluster_->durable_logs().Totals().appends, 20u);
}

TEST_F(DurableStreamTest, ReplaysExactlyTheMissedSuffixAfterDisconnect) {
  DeviceAgent device(cluster_.get(), 1, 0, DeviceProfile::kWifi);
  std::multiset<uint64_t> seqs;
  Audit(device, &seqs);
  device.SubscribeTicker(1);
  cluster_->sim().RunFor(Seconds(2));

  PublishTicks(10, Millis(50));
  cluster_->sim().RunFor(Seconds(2));
  ASSERT_EQ(seqs.size(), 10u);

  // Radio drops; ten more ticks land while the device is away.
  device.burst().SetAutoReconnect(false);
  device.burst().SimulateConnectionDrop();
  PublishTicks(10, Millis(50));
  cluster_->sim().RunFor(Seconds(3));
  ASSERT_EQ(seqs.size(), 10u);

  device.burst().SetAutoReconnect(true);
  device.burst().Connect();
  cluster_->sim().RunFor(Seconds(5));

  // The reconnect replayed 11..20 — nothing twice, nothing missing.
  ExpectExactlyOnce(seqs, 20);
  EXPECT_GE(cluster_->metrics().GetCounter("brass.durable_replayed").value(), 1);
  EXPECT_EQ(cluster_->metrics().GetCounter("burst.client_duplicates_dropped").value(), 0);
}

TEST_F(DurableStreamTest, PopFailureStormPreservesExactlyOnce) {
  std::vector<std::unique_ptr<DeviceAgent>> devices;
  std::vector<std::unique_ptr<std::multiset<uint64_t>>> audits;
  for (int i = 0; i < 8; ++i) {
    devices.push_back(
        std::make_unique<DeviceAgent>(cluster_.get(), 100 + i, 0, DeviceProfile::kWifi));
    audits.push_back(std::make_unique<std::multiset<uint64_t>>());
    Audit(*devices.back(), audits.back().get());
    devices.back()->SubscribeTicker(1);
  }
  cluster_->sim().RunFor(Seconds(2));

  PublishTicks(40, Millis(100));
  // The POP dies mid-stream: every device on it drops and reconnects
  // elsewhere while ticks keep publishing.
  cluster_->sim().Schedule(Seconds(1), [this]() { cluster_->pop(0).FailPop(); });
  cluster_->sim().RunFor(Seconds(20));

  for (auto& audit : audits) {
    ExpectExactlyOnce(*audit, 40);
  }
}

TEST_F(DurableStreamTest, ReconnectLandingMidReplayStaysExactlyOnce) {
  DeviceAgent device(cluster_.get(), 1, 0, DeviceProfile::kWifi);
  std::multiset<uint64_t> seqs;
  Audit(device, &seqs);
  device.SubscribeTicker(1);
  cluster_->sim().RunFor(Seconds(2));

  device.burst().SetAutoReconnect(false);
  device.burst().SimulateConnectionDrop();
  PublishTicks(60, Millis(10));
  cluster_->sim().RunFor(Seconds(3));

  // Reconnect, then yank the connection almost immediately — squarely in
  // the middle of the 60-entry replay — and reconnect again.
  device.burst().SetAutoReconnect(true);
  device.burst().Connect();
  cluster_->sim().RunFor(Millis(40));
  device.burst().SimulateConnectionDrop();
  cluster_->sim().RunFor(Seconds(10));

  ExpectExactlyOnce(seqs, 60);
}

TEST_F(DurableStreamTest, ResumePastRetentionSignalsRestartAndResumesAtOldest) {
  // Tiny retention: ~12 entries survive (8 hot + one 4-entry cold segment).
  DurableLogConfig log_config;
  log_config.hot_log_max_entries = 4;
  log_config.max_cold_segments = 1;
  Build(log_config);

  DeviceAgent device(cluster_.get(), 1, 0, DeviceProfile::kWifi);
  std::multiset<uint64_t> seqs;
  Audit(device, &seqs);
  device.SubscribeTicker(1);
  cluster_->sim().RunFor(Seconds(2));

  PublishTicks(5, Millis(20));
  cluster_->sim().RunFor(Seconds(2));
  ASSERT_EQ(seqs.size(), 5u);

  // Away long enough that retention drops the device's resume point.
  device.burst().SetAutoReconnect(false);
  device.burst().SimulateConnectionDrop();
  PublishTicks(60, Millis(10));
  cluster_->sim().RunFor(Seconds(3));
  uint64_t flow_restarts_before = device.flow_restarted_count();

  device.burst().SetAutoReconnect(true);
  device.burst().Connect();
  cluster_->sim().RunFor(Seconds(10));

  // The gap 6..oldest-1 is gone; the stream must say so (restarted signal)
  // rather than silently skipping, then replay the retained suffix exactly
  // once.
  EXPECT_GT(device.flow_restarted_count(), flow_restarts_before);
  EXPECT_GE(cluster_->metrics().GetCounter("brass.durable_truncated_resumes").value(), 1);
  uint64_t oldest = cluster_->durable_logs().LogFor(TickerTopic(1)).oldest_retained_seq();
  ASSERT_GT(oldest, 6u);
  std::multiset<uint64_t> replayed;
  for (uint64_t s : seqs) {
    if (s > 5) {
      replayed.insert(s);
    }
  }
  ASSERT_FALSE(replayed.empty());
  uint64_t expected = oldest;
  for (uint64_t s : replayed) {
    ASSERT_EQ(s, expected);
    expected += 1;
  }
  EXPECT_EQ(expected, 66u);  // replayed through the latest tick
}

}  // namespace
}  // namespace bladerunner
