// Tests for the src/trace subsystem: span tree structure across RPC hops,
// error-closure of failed stream spans, critical-path telescoping,
// determinism of exports, and head-based sampling stability.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/core/cluster.h"
#include "src/core/device.h"
#include "src/trace/analysis.h"
#include "src/trace/collector.h"
#include "src/trace/export.h"
#include "src/was/resolvers.h"
#include "src/workload/social_gen.h"

namespace bladerunner {
namespace {

// A small end-to-end LVC scenario: viewers stream comments on one video
// while posters mutate through the WAS. Returns the cluster (and the
// devices that must outlive the run) for trace inspection.
struct ScenarioRun {
  std::unique_ptr<BladerunnerCluster> cluster;
  std::vector<std::unique_ptr<DeviceAgent>> devices;
};

ScenarioRun RunLvcScenario(uint64_t seed, double sample_rate = 1.0) {
  ScenarioRun run;
  ClusterConfig config;
  config.seed = seed;
  config.trace.sample_rate = sample_rate;
  run.cluster = std::make_unique<BladerunnerCluster>(config);
  BladerunnerCluster& cluster = *run.cluster;

  SocialGraphConfig graph_config;
  graph_config.num_users = 30;
  graph_config.num_videos = 1;
  graph_config.num_threads = 5;
  SocialGraph graph = GenerateSocialGraph(cluster.tao(), cluster.sim().rng(), graph_config);
  // The LVC filter only surfaces friends' comments; guarantee the poster
  // (users[20]) is a friend of every viewer so updates reach devices.
  for (int i = 0; i < 6; ++i) {
    MakeFriends(cluster.tao(), graph.users[static_cast<size_t>(i)], graph.users[20]);
  }
  cluster.sim().RunFor(Seconds(2));

  for (int i = 0; i < 6; ++i) {
    run.devices.push_back(std::make_unique<DeviceAgent>(
        &cluster, graph.users[static_cast<size_t>(i)], 0, DeviceProfile::kWifi));
    run.devices.back()->SubscribeLvc(graph.videos[0]);
  }
  cluster.sim().RunFor(Seconds(5));

  run.devices.push_back(std::make_unique<DeviceAgent>(&cluster, graph.users[20], 0,
                                                      DeviceProfile::kWifi));
  DeviceAgent* poster = run.devices.back().get();
  for (int round = 0; round < 10; ++round) {
    // Post in the first viewer's language so the BRASS-side language filter
    // passes for at least that stream and the update reaches a device.
    poster->PostComment(graph.videos[0], "c", graph.language[graph.users[0]]);
    cluster.sim().RunFor(Seconds(2));
  }
  cluster.sim().RunFor(Seconds(20));
  return run;
}

// Returns the first retained trace whose root span has the given name and
// which contains at least one "burst.deliver" span (i.e. an update that
// made it all the way to a device).
const TraceRecord* FindDeliveredUpdateTrace(const TraceCollector& trace) {
  for (const TraceRecord& record : trace.Traces()) {
    if (record.root() == nullptr || record.root()->name != "update") {
      continue;
    }
    for (const Span& span : record.spans) {
      if (span.name == "burst.deliver" && !span.open()) {
        return &record;
      }
    }
  }
  return nullptr;
}

TEST(TraceTreeTest, UpdateSpansFormSingleRootedTreeAcrossHops) {
  ScenarioRun run = RunLvcScenario(101);
  const TraceRecord* record = FindDeliveredUpdateTrace(run.cluster->trace());
  ASSERT_NE(record, nullptr);

  // Exactly one root; every non-root span's parent exists in the same
  // trace, so the spans form a single rooted tree.
  int roots = 0;
  std::set<std::string> components;
  for (const Span& span : record->spans) {
    components.insert(span.component);
    if (span.parent_span_id == 0) {
      ++roots;
      EXPECT_EQ(span.name, "update");
      continue;
    }
    const Span* parent = record->Find(span.parent_span_id);
    ASSERT_NE(parent, nullptr) << "span " << span.name << " has a dangling parent";
    EXPECT_LE(parent->start, span.start);
  }
  EXPECT_EQ(roots, 1);

  // The journey crosses at least WAS -> Pylon -> BRASS -> BURST (3+ RPC
  // hops), each contributing spans under the one root.
  EXPECT_TRUE(components.count("was"));
  EXPECT_TRUE(components.count("pylon"));
  EXPECT_TRUE(components.count("brass"));
  EXPECT_TRUE(components.count("burst"));
}

TEST(TraceTreeTest, FailedHostStreamSpansAreClosedWithError) {
  ScenarioRun run = RunLvcScenario(202);
  BladerunnerCluster& cluster = *run.cluster;
  for (size_t i = 0; i < cluster.NumBrassHosts(); ++i) {
    cluster.brass_host(i).FailHost();
  }
  cluster.sim().RunFor(Seconds(2));

  SpanQuery query;
  query.name = "brass.stream";
  std::vector<const Span*> streams = FindSpans(cluster.trace(), query);
  ASSERT_FALSE(streams.empty());
  bool saw_error = false;
  for (const Span* span : streams) {
    if (!span->error) {
      continue;
    }
    saw_error = true;
    EXPECT_FALSE(span->open()) << "error-marked stream span left open";
    const Value* message = span->FindAnnotation("error");
    ASSERT_NE(message, nullptr);
    EXPECT_EQ(message->AsString(), "host failure");
  }
  EXPECT_TRUE(saw_error);
}

TEST(CriticalPathTest, ContributionsTelescopeOnLinearTrace) {
  TraceCollector trace;
  TraceContext root = trace.StartTrace("update", "was", 0, Millis(10));
  TraceContext child = trace.StartSpan(root, "pylon.publish", "pylon", 0, Millis(20));
  TraceContext grandchild = trace.StartSpan(child, "pylon.deliver", "pylon", 1, Millis(30));
  trace.EndSpan(grandchild, Millis(80));
  trace.EndSpan(child, Millis(90));
  trace.EndSpan(root, Millis(110));

  const TraceRecord* record = trace.FindTrace(root.trace_id);
  ASSERT_NE(record, nullptr);
  std::vector<CriticalPathSegment> path = CriticalPath(*record);
  ASSERT_EQ(path.size(), 3u);
  // On a linear fully-nested trace the per-segment contributions telescope:
  // their sum is exactly the root duration.
  EXPECT_EQ(CriticalPathDuration(*record), record->root()->duration());
  EXPECT_EQ(CriticalPathDuration(*record), Millis(100));
}

TEST(TraceDeterminismTest, SameSeedRunsExportByteIdenticalJson) {
  ScenarioRun a = RunLvcScenario(303);
  ScenarioRun b = RunLvcScenario(303);
  std::string json_a = ChromeTraceJson(a.cluster->trace());
  std::string json_b = ChromeTraceJson(b.cluster->trace());
  ASSERT_FALSE(json_a.empty());
  EXPECT_GT(a.cluster->trace().TraceCount(), 0u);
  EXPECT_EQ(json_a, json_b);
}

TEST(TraceDeterminismTest, SamplingKeepsSameTraceIds) {
  ScenarioRun full = RunLvcScenario(404, /*sample_rate=*/1.0);
  ScenarioRun sampled = RunLvcScenario(404, /*sample_rate=*/0.1);

  std::set<TraceId> full_ids;
  for (const TraceRecord& record : full.cluster->trace().Traces()) {
    full_ids.insert(record.trace_id);
  }
  std::set<TraceId> sampled_ids;
  for (const TraceRecord& record : sampled.cluster->trace().Traces()) {
    sampled_ids.insert(record.trace_id);
  }
  // Head-based sampling is a pure function of the trace id, so the sampled
  // run keeps a strict subset of the full run's trace ids.
  ASSERT_FALSE(full_ids.empty());
  EXPECT_LT(sampled_ids.size(), full_ids.size());
  for (TraceId id : sampled_ids) {
    EXPECT_TRUE(full_ids.count(id)) << "sampled run produced an unknown trace id";
  }
}

TEST(TraceExportTest, ChromeJsonHasAllComponentsUnderOneRoot) {
  ScenarioRun run = RunLvcScenario(505);
  const TraceRecord* record = FindDeliveredUpdateTrace(run.cluster->trace());
  ASSERT_NE(record, nullptr);
  std::string json = ChromeTraceJson(*record);

  // Structurally valid: balanced braces/brackets, trace-event envelope.
  long depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Every pipeline component appears as a named thread in the export.
  for (const char* component : {"was", "pylon", "brass", "burst"}) {
    EXPECT_NE(json.find(std::string("\"") + component + "\""), std::string::npos)
        << "missing component " << component;
  }
  // And the trace renders as a tree rooted at the update span.
  std::string text = RenderTrace(*record);
  EXPECT_NE(text.find("update"), std::string::npos);
  EXPECT_NE(text.find("burst.deliver"), std::string::npos);
}

}  // namespace
}  // namespace bladerunner
