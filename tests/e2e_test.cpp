// Integration tests: the full Bladerunner stack — device -> POP -> proxy ->
// BRASS -> Pylon -> WAS -> TAO — exercised end to end, including the §4
// failure-handling axioms.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/cluster.h"
#include "src/core/device.h"
#include "src/was/resolvers.h"
#include "src/workload/social_gen.h"

namespace bladerunner {
namespace {

class E2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.seed = 1234;
    cluster_ = std::make_unique<BladerunnerCluster>(config);
    SocialGraphConfig graph_config;
    graph_config.num_users = 40;
    graph_config.num_videos = 2;
    graph_config.num_threads = 6;
    graph_ = GenerateSocialGraph(cluster_->tao(), cluster_->sim().rng(), graph_config);
    cluster_->sim().RunFor(Seconds(2));  // let setup writes replicate
  }

  std::unique_ptr<DeviceAgent> MakeDevice(size_t user_index,
                                          DeviceProfile profile = DeviceProfile::kWifi) {
    auto device = std::make_unique<DeviceAgent>(
        cluster_.get(), graph_.users[user_index],
        cluster_->topology().SampleRegion(cluster_->sim().rng()), profile);
    return device;
  }

  std::unique_ptr<BladerunnerCluster> cluster_;
  SocialGraph graph_;
};

TEST_F(E2eTest, LvcCommentReachesSubscribedViewer) {
  auto viewer = MakeDevice(0);
  auto poster = MakeDevice(1);
  ObjectId video = graph_.videos[0];

  viewer->SubscribeLvc(video);
  cluster_->sim().RunFor(Seconds(3));  // stream + Pylon subscription settle

  poster->PostComment(video, "hello world", graph_.language[poster->user()]);
  // Comment ranking takes ~1.8 s at the WAS; allow the full pipeline.
  cluster_->sim().RunFor(Seconds(15));

  // The viewer sees the comment unless language filtering dropped it or
  // the quality draw fell below the floor. Use a matching language to
  // make the test deterministic:
  if (graph_.language[viewer->user()] == graph_.language[poster->user()]) {
    // may still be quality-filtered; accept >= 0 but require the decision
    EXPECT_GE(cluster_->metrics().GetCounter("brass.decisions").value(), 1);
  }
  EXPECT_GE(cluster_->metrics().GetCounter("was.publishes").value(), 1);
  EXPECT_GE(cluster_->metrics().GetCounter("pylon.publishes").value(), 1);
  EXPECT_GE(cluster_->metrics().GetCounter("brass.events_received").value(), 1);
}

TEST_F(E2eTest, LvcHighQualityCommentsAreDelivered) {
  auto viewer = MakeDevice(0);
  auto poster = MakeDevice(1);
  ObjectId video = graph_.videos[0];

  // Friend comments pass the relevance filter at normal quality; befriend
  // them before the subscription resolves the viewer's friend list.
  MakeFriends(cluster_->tao(), viewer->user(), poster->user());
  cluster_->sim().RunFor(Seconds(1));
  viewer->SubscribeLvc(video);
  cluster_->sim().RunFor(Seconds(3));

  // Post enough comments that some survive the quality filter; use the
  // viewer's own language so the language filter passes.
  const std::string& viewer_language = graph_.language[viewer->user()];
  for (int i = 0; i < 20; ++i) {
    poster->PostComment(video, "comment", viewer_language);
    cluster_->sim().RunFor(Millis(300));
  }
  cluster_->sim().RunFor(Seconds(30));

  EXPECT_GT(viewer->payloads_received(), 0u);
  EXPECT_GT(cluster_->metrics().GetCounter("brass.deliveries").value(), 0);
  // Rate limiting: no more than ~1 delivery per 2 s per stream.
  EXPECT_LE(viewer->payloads_received(), 25u);
}

TEST_F(E2eTest, TypingIndicatorFlowsEndToEnd) {
  // Find a thread with at least 2 members and make devices for both.
  ObjectId thread = graph_.threads[0];
  const auto& members = graph_.thread_members[thread];
  ASSERT_GE(members.size(), 2u);

  auto watcher = std::make_unique<DeviceAgent>(cluster_.get(), members[0], 0, DeviceProfile::kWifi);
  auto typist = std::make_unique<DeviceAgent>(cluster_.get(), members[1], 0, DeviceProfile::kWifi);

  watcher->SubscribeTyping(thread);
  cluster_->sim().RunFor(Seconds(3));

  typist->SetTyping(thread, true);
  cluster_->sim().RunFor(Seconds(5));

  EXPECT_GE(watcher->payloads_received(), 1u);
}

TEST_F(E2eTest, ActiveStatusBatchesOnlineFriends) {
  // Pick a user with at least one friend.
  size_t watcher_index = 0;
  while (watcher_index < graph_.users.size() &&
         graph_.FriendsOf(graph_.users[watcher_index]).empty()) {
    ++watcher_index;
  }
  ASSERT_LT(watcher_index, graph_.users.size());
  UserId watcher_user = graph_.users[watcher_index];
  UserId friend_user = graph_.FriendsOf(watcher_user)[0];

  auto watcher = std::make_unique<DeviceAgent>(cluster_.get(), watcher_user, 0,
                                               DeviceProfile::kWifi);
  auto friend_device = std::make_unique<DeviceAgent>(cluster_.get(), friend_user, 0,
                                                     DeviceProfile::kWifi);

  watcher->SubscribeActiveStatus();
  cluster_->sim().RunFor(Seconds(3));

  friend_device->StartHeartbeat();
  cluster_->sim().RunFor(Seconds(30));

  EXPECT_GE(watcher->payloads_received(), 1u);
  friend_device->StopHeartbeat();
}

TEST_F(E2eTest, MessengerDeliversInOrderWithSequenceNumbers) {
  ObjectId thread = graph_.threads[0];
  const auto& members = graph_.thread_members[thread];
  ASSERT_GE(members.size(), 2u);

  auto receiver = std::make_unique<DeviceAgent>(cluster_.get(), members[0], 0,
                                                DeviceProfile::kWifi);
  auto sender = std::make_unique<DeviceAgent>(cluster_.get(), members[1], 0,
                                              DeviceProfile::kWifi);

  receiver->SubscribeMailbox(0);
  cluster_->sim().RunFor(Seconds(3));

  for (int i = 0; i < 5; ++i) {
    sender->SendMessage(thread, "msg" + std::to_string(i));
    cluster_->sim().RunFor(Seconds(2));
  }
  cluster_->sim().RunFor(Seconds(10));

  EXPECT_GE(receiver->payloads_received(), 5u);
  EXPECT_EQ(receiver->messenger_order_violations(), 0u);
  EXPECT_GE(receiver->last_messenger_seq(), 5u);
}

TEST_F(E2eTest, StoriesTrayUpdatesArrive) {
  size_t watcher_index = 0;
  while (watcher_index < graph_.users.size() &&
         graph_.FriendsOf(graph_.users[watcher_index]).empty()) {
    ++watcher_index;
  }
  ASSERT_LT(watcher_index, graph_.users.size());
  UserId watcher_user = graph_.users[watcher_index];
  UserId friend_user = graph_.FriendsOf(watcher_user)[0];

  auto watcher = std::make_unique<DeviceAgent>(cluster_.get(), watcher_user, 0,
                                               DeviceProfile::kWifi);
  auto friend_device = std::make_unique<DeviceAgent>(cluster_.get(), friend_user, 0,
                                                     DeviceProfile::kWifi);

  watcher->SubscribeStories();
  cluster_->sim().RunFor(Seconds(3));

  friend_device->PostStory("my story");
  cluster_->sim().RunFor(Seconds(10));

  EXPECT_GE(watcher->payloads_received(), 1u);
}

TEST_F(E2eTest, DeviceReconnectsAfterConnectionDropAndStreamsRecover) {
  ObjectId thread = graph_.threads[0];
  const auto& members = graph_.thread_members[thread];
  ASSERT_GE(members.size(), 2u);

  auto receiver = std::make_unique<DeviceAgent>(cluster_.get(), members[0], 0,
                                                DeviceProfile::kWifi);
  auto sender = std::make_unique<DeviceAgent>(cluster_.get(), members[1], 0,
                                              DeviceProfile::kWifi);
  receiver->SubscribeMailbox(0);
  cluster_->sim().RunFor(Seconds(3));

  sender->SendMessage(thread, "before drop");
  cluster_->sim().RunFor(Seconds(3));
  EXPECT_GE(receiver->payloads_received(), 1u);

  // Abrupt last-mile loss; the client detects it, backs off, reconnects,
  // and resubscribes with the rewritten header (sticky + resume token).
  receiver->burst().SimulateConnectionDrop();
  EXPECT_GT(receiver->flow_degraded_count(), 0u);
  cluster_->sim().RunFor(Seconds(8));
  EXPECT_TRUE(receiver->burst().connected());

  sender->SendMessage(thread, "after drop");
  cluster_->sim().RunFor(Seconds(8));
  EXPECT_GE(receiver->last_messenger_seq(), 2u);
  EXPECT_EQ(receiver->messenger_order_violations(), 0u);
}

TEST_F(E2eTest, BrassHostDrainMovesStreamsToAnotherHost) {
  auto viewer = MakeDevice(0);
  ObjectId video = graph_.videos[0];
  viewer->SubscribeLvc(video);
  cluster_->sim().RunFor(Seconds(3));

  // Find the host actually serving a stream.
  size_t serving = cluster_->NumBrassHosts();
  for (size_t i = 0; i < cluster_->NumBrassHosts(); ++i) {
    if (cluster_->brass_host(i).StreamCount() > 0) {
      serving = i;
      break;
    }
  }
  ASSERT_LT(serving, cluster_->NumBrassHosts());

  int64_t before = cluster_->metrics().GetCounter("burst.proxy_induced_reconnects").value();
  cluster_->brass_host(serving).Drain();
  cluster_->sim().RunFor(Seconds(10));

  // The proxy repaired the stream onto another host (Fig. 10's
  // proxy-induced reconnects).
  EXPECT_GT(cluster_->metrics().GetCounter("burst.proxy_induced_reconnects").value(), before);
  size_t total_streams = 0;
  for (size_t i = 0; i < cluster_->NumBrassHosts(); ++i) {
    total_streams += cluster_->brass_host(i).StreamCount();
  }
  EXPECT_GE(total_streams, 1u);
  EXPECT_EQ(cluster_->brass_host(serving).StreamCount(), 0u);
}

TEST_F(E2eTest, BrassHostCrashRecoversViaResubscribe) {
  ObjectId thread = graph_.threads[0];
  const auto& members = graph_.thread_members[thread];
  auto receiver = std::make_unique<DeviceAgent>(cluster_.get(), members[0], 0,
                                                DeviceProfile::kWifi);
  auto sender = std::make_unique<DeviceAgent>(cluster_.get(), members[1], 0,
                                              DeviceProfile::kWifi);
  receiver->SubscribeMailbox(0);
  cluster_->sim().RunFor(Seconds(3));
  sender->SendMessage(thread, "one");
  cluster_->sim().RunFor(Seconds(5));

  for (size_t i = 0; i < cluster_->NumBrassHosts(); ++i) {
    if (cluster_->brass_host(i).StreamCount() > 0) {
      cluster_->brass_host(i).FailHost();
    }
  }
  cluster_->sim().RunFor(Seconds(10));

  sender->SendMessage(thread, "two");
  cluster_->sim().RunFor(Seconds(10));
  // The replacement BRASS resumed from the rewritten resume token; the
  // device sees both messages, in order.
  EXPECT_GE(receiver->last_messenger_seq(), 2u);
  EXPECT_EQ(receiver->messenger_order_violations(), 0u);
}

TEST_F(E2eTest, PopFailureRecovers) {
  auto viewer = MakeDevice(0);
  ObjectId video = graph_.videos[0];
  viewer->SubscribeLvc(video);
  cluster_->sim().RunFor(Seconds(3));

  // Fail every POP in the viewer's region; the device reconnects to some
  // alternate POP and resubscribes.
  for (size_t i = 0; i < cluster_->NumPops(); ++i) {
    if (cluster_->pop(i).DeviceConnectionCount() > 0) {
      cluster_->pop(i).FailPop();
    }
  }
  cluster_->sim().RunFor(Seconds(10));
  EXPECT_TRUE(viewer->burst().connected());
  EXPECT_EQ(viewer->burst().ActiveStreamCount(), 1u);
}

TEST_F(E2eTest, ProxyFailureRepairsThroughAlternate) {
  auto viewer = MakeDevice(0);
  ObjectId video = graph_.videos[0];
  viewer->SubscribeLvc(video);
  cluster_->sim().RunFor(Seconds(3));

  int64_t before = cluster_->metrics().GetCounter("burst.pop_initiated_reconnects").value();
  for (size_t i = 0; i < cluster_->NumProxies(); ++i) {
    if (cluster_->proxy(i).StreamCount() > 0) {
      cluster_->proxy(i).FailProxy();
      break;
    }
  }
  cluster_->sim().RunFor(Seconds(10));
  EXPECT_GT(cluster_->metrics().GetCounter("burst.pop_initiated_reconnects").value(), before);
  // Stream still live end-to-end at some host.
  size_t total_streams = 0;
  for (size_t i = 0; i < cluster_->NumBrassHosts(); ++i) {
    total_streams += cluster_->brass_host(i).StreamCount();
  }
  EXPECT_GE(total_streams, 1u);
}

TEST_F(E2eTest, CancelledStreamStopsDeliveries) {
  auto viewer = MakeDevice(0);
  auto poster = MakeDevice(1);
  ObjectId video = graph_.videos[0];
  uint64_t sid = viewer->SubscribeLvc(video);
  cluster_->sim().RunFor(Seconds(3));

  viewer->CancelStream(sid);
  cluster_->sim().RunFor(Seconds(2));
  uint64_t before = viewer->payloads_received();

  for (int i = 0; i < 10; ++i) {
    poster->PostComment(video, "x", "en");
  }
  cluster_->sim().RunFor(Seconds(15));
  EXPECT_EQ(viewer->payloads_received(), before);
  // And the BRASS hosts hold no streams for it.
  size_t total_streams = 0;
  for (size_t i = 0; i < cluster_->NumBrassHosts(); ++i) {
    total_streams += cluster_->brass_host(i).StreamCount();
  }
  EXPECT_EQ(total_streams, 0u);
}

TEST_F(E2eTest, StickyRoutingReturnsToSameHostAfterReconnect) {
  auto viewer = MakeDevice(0);
  ObjectId video = graph_.videos[0];
  uint64_t sid = viewer->SubscribeLvc(video);
  cluster_->sim().RunFor(Seconds(3));

  const Value* header = viewer->burst().HeaderOf(sid);
  ASSERT_NE(header, nullptr);
  int64_t host_before = StreamHeaderView(*header).brass_host();
  EXPECT_NE(host_before, 0);  // the sticky rewrite landed on the device

  viewer->burst().SimulateConnectionDrop();
  cluster_->sim().RunFor(Seconds(8));
  ASSERT_TRUE(viewer->burst().connected());

  header = viewer->burst().HeaderOf(sid);
  ASSERT_NE(header, nullptr);
  EXPECT_EQ(StreamHeaderView(*header).brass_host(), host_before);
  // And that host indeed serves the stream again.
  BrassHost* host = cluster_->router().FindHost(host_before);
  ASSERT_NE(host, nullptr);
  EXPECT_GE(host->StreamCount(), 1u);
}

TEST_F(E2eTest, DeterministicReplay) {
  auto run = [&](uint64_t seed) {
    ClusterConfig config;
    config.seed = seed;
    BladerunnerCluster cluster(config);
    SocialGraphConfig graph_config;
    graph_config.num_users = 20;
    SocialGraph graph = GenerateSocialGraph(cluster.tao(), cluster.sim().rng(), graph_config);
    cluster.sim().RunFor(Seconds(2));
    DeviceAgent viewer(&cluster, graph.users[0], 0, DeviceProfile::kWifi);
    DeviceAgent poster(&cluster, graph.users[1], 0, DeviceProfile::kWifi);
    viewer.SubscribeLvc(graph.videos[0]);
    cluster.sim().RunFor(Seconds(3));
    for (int i = 0; i < 10; ++i) {
      poster.PostComment(graph.videos[0], "c", "en");
      cluster.sim().RunFor(Millis(500));
    }
    cluster.sim().RunFor(Seconds(20));
    return std::make_pair(viewer.payloads_received(),
                          cluster.metrics().GetCounter("brass.decisions").value());
  };
  auto a = run(99);
  auto b = run(99);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace bladerunner
