// Protocol-level tests for BURST: the full device -> POP -> proxy -> host
// chain built with fake application handlers, exercising multiplexing,
// rewrites, sticky routing, redirects, acks, batches, and the §4 failure
// signalling / recovery axioms at the protocol layer.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/burst/client.h"
#include "src/burst/pop.h"
#include "src/burst/proxy.h"
#include "src/burst/server.h"
#include "src/sim/simulator.h"

namespace bladerunner {
namespace {

// Records everything; echoes nothing by default.
class FakeAppHandler : public BurstServerHandler {
 public:
  void OnStreamStarted(ServerStream& stream) override {
    started.push_back(stream.key());
    last_stream = &stream;
  }
  void OnStreamResumed(ServerStream& stream) override {
    resumed.push_back(stream.key());
    last_stream = &stream;
  }
  void OnStreamDetached(ServerStream& stream, const std::string& reason) override {
    detached.push_back(stream.key());
    (void)reason;
  }
  void OnStreamClosed(const StreamKey& key, TerminateReason reason) override {
    closed.push_back(key);
    close_reasons.push_back(reason);
  }
  void OnAck(ServerStream& stream, uint64_t seq) override {
    acks.push_back({stream.key(), seq});
  }

  std::vector<StreamKey> started;
  std::vector<StreamKey> resumed;
  std::vector<StreamKey> detached;
  std::vector<StreamKey> closed;
  std::vector<TerminateReason> close_reasons;
  std::vector<std::pair<StreamKey, uint64_t>> acks;
  ServerStream* last_stream = nullptr;
};

class FakeObserver : public BurstClient::Observer {
 public:
  void OnStreamData(uint64_t sid, const Value& payload, uint64_t seq) override {
    data.push_back({sid, payload, seq});
  }
  void OnStreamFlowStatus(uint64_t sid, FlowStatus status, const std::string&) override {
    flow.push_back({sid, status});
  }
  void OnStreamTerminated(uint64_t sid, TerminateReason reason, const std::string&) override {
    terminated.push_back({sid, reason});
  }
  void OnConnectionStateChanged(bool connected) override {
    connection_changes.push_back(connected);
  }

  struct DataEvent {
    uint64_t sid;
    Value payload;
    uint64_t seq;
  };
  std::vector<DataEvent> data;
  std::vector<std::pair<uint64_t, FlowStatus>> flow;
  std::vector<std::pair<uint64_t, TerminateReason>> terminated;
  std::vector<bool> connection_changes;
};

// Directory over a fixed set of hosts; load-based pick.
class FakeDirectory : public BurstServerDirectory {
 public:
  explicit FakeDirectory(Simulator* sim) : sim_(sim) {}

  void AddHost(int64_t id, BurstServer* server) { hosts_[id] = server; }

  HostPick PickHost(const StreamHeaderView& header) override {
    (void)header;
    size_t min_load = SIZE_MAX;
    for (auto& [id, server] : hosts_) {
      if (server->alive()) {
        min_load = std::min(min_load, server->StreamCount());
      }
    }
    std::vector<int64_t> tied;
    for (auto& [id, server] : hosts_) {
      if (server->alive() && server->StreamCount() == min_load) {
        tied.push_back(id);
      }
    }
    if (tied.empty()) {
      return HostPick{};
    }
    return HostPick{tied[round_robin_++ % tied.size()], false};
  }
  bool IsHostAlive(int64_t host_id) const override {
    auto it = hosts_.find(host_id);
    return it != hosts_.end() && it->second->alive();
  }
  std::shared_ptr<ConnectionEnd> ConnectToHost(ReverseProxy*, int64_t host_id) override {
    auto it = hosts_.find(host_id);
    if (it == hosts_.end() || !it->second->alive()) {
      return nullptr;
    }
    auto [proxy_end, host_end] = CreateConnection(sim_, LatencyModel::Fixed(0.5), Millis(50));
    it->second->AttachProxyConnection(std::move(host_end));
    return proxy_end;
  }

 private:
  Simulator* sim_;
  std::map<int64_t, BurstServer*> hosts_;
  size_t round_robin_ = 0;
};

class BurstTest : public ::testing::Test {
 protected:
  BurstTest() : sim_(21) {
    config_.reconnect_backoff_min = Millis(50);
    config_.reconnect_backoff_max = Millis(200);
    config_.failure_detection_delay = Millis(50);
    config_.server_stream_keep_timeout = Seconds(10);

    directory_ = std::make_unique<FakeDirectory>(&sim_);
    server1_ = std::make_unique<BurstServer>(&sim_, 1, &app1_, config_, &metrics_);
    server2_ = std::make_unique<BurstServer>(&sim_, 2, &app2_, config_, &metrics_);
    directory_->AddHost(1, server1_.get());
    directory_->AddHost(2, server2_.get());

    proxy_ =
        std::make_unique<ReverseProxy>(&sim_, ProxyId(1), 0, directory_.get(), config_, &metrics_);
    proxy2_ =
        std::make_unique<ReverseProxy>(&sim_, ProxyId(2), 0, directory_.get(), config_, &metrics_);

    pop_connector_ = [this](Pop*, RegionId, ProxyId exclude) -> Pop::Uplink {
      ReverseProxy* target = nullptr;
      if (proxy_->alive() && proxy_->proxy_id() != exclude) {
        target = proxy_.get();
      } else if (proxy2_->alive() && proxy2_->proxy_id() != exclude) {
        target = proxy2_.get();
      }
      if (target == nullptr) {
        return {};
      }
      auto [pop_end, proxy_end] = CreateConnection(&sim_, LatencyModel::Fixed(2.0), Millis(50));
      target->AttachPopConnection(std::move(proxy_end));
      Pop::Uplink uplink;
      uplink.end = std::move(pop_end);
      uplink.proxy_id = target->proxy_id();
      return uplink;
    };
    pop_ = std::make_unique<Pop>(&sim_, PopId(1), 0, pop_connector_, config_, &metrics_);

    client_connector_ = [this](int64_t, BurstClient::ConnectDone done) {
      if (!pop_->alive()) {
        done(nullptr);
        return;
      }
      auto [device_end, pop_end] = CreateConnection(&sim_, LatencyModel::Fixed(5.0), Millis(50));
      pop_->AttachDeviceConnection(std::move(pop_end));
      done(std::move(device_end));
    };
    client_ = std::make_unique<BurstClient>(&sim_, 100, client_connector_, &observer_, config_,
                                            &metrics_);
  }

  Value MakeHeader(const std::string& app) {
    StreamHeader header;
    header.set_app(app).set_viewer(100);
    return std::move(header).Take();
  }

  Simulator sim_;
  MetricsRegistry metrics_;
  BurstConfig config_;
  FakeAppHandler app1_;
  FakeAppHandler app2_;
  std::unique_ptr<FakeDirectory> directory_;
  std::unique_ptr<BurstServer> server1_;
  std::unique_ptr<BurstServer> server2_;
  std::unique_ptr<ReverseProxy> proxy_;
  std::unique_ptr<ReverseProxy> proxy2_;
  Pop::ProxyConnector pop_connector_;
  std::unique_ptr<Pop> pop_;
  BurstClient::Connector client_connector_;
  FakeObserver observer_;
  std::unique_ptr<BurstClient> client_;
};

TEST_F(BurstTest, SubscribeReachesAHost) {
  uint64_t sid = client_->Subscribe(MakeHeader("test"));
  sim_.RunFor(Seconds(1));
  ASSERT_EQ(app1_.started.size() + app2_.started.size(), 1u);
  const StreamKey& key = app1_.started.empty() ? app2_.started[0] : app1_.started[0];
  EXPECT_EQ(key.device_id, 100);
  EXPECT_EQ(key.sid, sid);
}

TEST_F(BurstTest, DataFlowsDownstream) {
  uint64_t sid = client_->Subscribe(MakeHeader("test"));
  sim_.RunFor(Seconds(1));
  FakeAppHandler& app = app1_.started.empty() ? app2_ : app1_;
  Value payload;
  payload.Set("msg", "hello");
  app.last_stream->PushData(payload, 5);
  sim_.RunFor(Seconds(1));
  ASSERT_EQ(observer_.data.size(), 1u);
  EXPECT_EQ(observer_.data[0].sid, sid);
  EXPECT_EQ(observer_.data[0].seq, 5u);
  EXPECT_EQ(observer_.data[0].payload.Get("msg").AsString(), "hello");
}

TEST_F(BurstTest, BatchesApplyAtomically) {
  client_->Subscribe(MakeHeader("test"));
  sim_.RunFor(Seconds(1));
  FakeAppHandler& app = app1_.started.empty() ? app2_ : app1_;
  Value rewritten = app.last_stream->header();
  rewritten.Set("extra", "state");
  app.last_stream->Push({Delta::Rewrite(rewritten), Delta::Data(Value("d1"), 1),
                         Delta::Data(Value("d2"), 2)});
  sim_.RunFor(Seconds(1));
  ASSERT_EQ(observer_.data.size(), 2u);
  // The rewrite applied before data callbacks fired: the client header
  // already carries the new state.
  const Value* header = client_->HeaderOf(observer_.data[0].sid);
  ASSERT_NE(header, nullptr);
  EXPECT_EQ(header->Get("extra").AsString(), "state");
}

TEST_F(BurstTest, MultipleStreamsMultiplexIndependently) {
  uint64_t sid1 = client_->Subscribe(MakeHeader("app-a"));
  uint64_t sid2 = client_->Subscribe(MakeHeader("app-b"));
  sim_.RunFor(Seconds(1));
  EXPECT_EQ(client_->ActiveStreamCount(), 2u);
  EXPECT_NE(sid1, sid2);
  // Cancelling one leaves the other.
  client_->Cancel(sid1);
  sim_.RunFor(Seconds(1));
  EXPECT_EQ(client_->ActiveStreamCount(), 1u);
  EXPECT_EQ(server1_->StreamCount() + server2_->StreamCount(), 1u);
}

TEST_F(BurstTest, CancelNotifiesHost) {
  uint64_t sid = client_->Subscribe(MakeHeader("test"));
  sim_.RunFor(Seconds(1));
  client_->Cancel(sid);
  sim_.RunFor(Seconds(1));
  FakeAppHandler& app = app1_.started.empty() ? app2_ : app1_;
  ASSERT_EQ(app.closed.size(), 1u);
  EXPECT_EQ(app.close_reasons[0], TerminateReason::kCancelled);
}

TEST_F(BurstTest, AcksReachTheHost) {
  uint64_t sid = client_->Subscribe(MakeHeader("test"));
  sim_.RunFor(Seconds(1));
  client_->Ack(sid, 42);
  sim_.RunFor(Seconds(1));
  FakeAppHandler& app = app1_.started.empty() ? app2_ : app1_;
  ASSERT_EQ(app.acks.size(), 1u);
  EXPECT_EQ(app.acks[0].second, 42u);
  EXPECT_EQ(app.last_stream->last_ack(), 42u);
}

TEST_F(BurstTest, ServerTerminationReachesClient) {
  client_->Subscribe(MakeHeader("test"));
  sim_.RunFor(Seconds(1));
  FakeAppHandler& app = app1_.started.empty() ? app2_ : app1_;
  app.last_stream->Terminate(TerminateReason::kComplete, "done");
  sim_.RunFor(Seconds(1));
  ASSERT_EQ(observer_.terminated.size(), 1u);
  EXPECT_EQ(observer_.terminated[0].second, TerminateReason::kComplete);
  EXPECT_EQ(client_->ActiveStreamCount(), 0u);
  // Proxy and POP state must be GCed too.
  EXPECT_EQ(proxy_->StreamCount() + proxy2_->StreamCount(), 0u);
  EXPECT_EQ(pop_->StreamCount(), 0u);
}

TEST_F(BurstTest, RewritePropagatesToAllStoredCopies) {
  uint64_t sid = client_->Subscribe(MakeHeader("test"));
  sim_.RunFor(Seconds(1));
  FakeAppHandler& app = app1_.started.empty() ? app2_ : app1_;
  StreamHeader header(app.last_stream->header());
  header.set_resume_token(77);
  app.last_stream->Rewrite(std::move(header).Take());
  sim_.RunFor(Seconds(1));
  const Value* client_header = client_->HeaderOf(sid);
  ASSERT_NE(client_header, nullptr);
  EXPECT_EQ(StreamHeaderView(*client_header).resume_token(), 77);
}

TEST_F(BurstTest, ReconnectAfterDropResubscribesWithRewrittenHeader) {
  uint64_t sid = client_->Subscribe(MakeHeader("test"));
  sim_.RunFor(Seconds(1));
  FakeAppHandler& app = app1_.started.empty() ? app2_ : app1_;
  BurstServer* serving = app1_.started.empty() ? server2_.get() : server1_.get();
  StreamHeader header(app.last_stream->header());
  header.set_brass_host(serving->host_id()).set_resume_token(9);
  app.last_stream->Rewrite(std::move(header).Take());
  sim_.RunFor(Seconds(1));

  client_->SimulateConnectionDrop();
  sim_.RunFor(Seconds(2));
  ASSERT_TRUE(client_->connected());

  // The host retained state -> resume (not a fresh start), and the client
  // observed a recovery flow status.
  EXPECT_EQ(app.resumed.size(), 1u);
  bool saw_recovered = false;
  for (auto& [s, status] : observer_.flow) {
    if (s == sid && status == FlowStatus::kRecovered) {
      saw_recovered = true;
    }
  }
  EXPECT_TRUE(saw_recovered);
  // The resubscribe carried the rewritten header.
  EXPECT_EQ(StreamHeaderView(app.last_stream->header()).resume_token(), 9);
}

TEST_F(BurstTest, HostCrashRepairsOntoOtherHost) {
  client_->Subscribe(MakeHeader("test"));
  sim_.RunFor(Seconds(1));
  BurstServer* serving = app1_.started.empty() ? server2_.get() : server1_.get();
  BurstServer* other = serving == server1_.get() ? server2_.get() : server1_.get();
  FakeAppHandler& other_app = serving == server1_.get() ? app2_ : app1_;

  serving->FailHost();
  sim_.RunFor(Seconds(2));

  // Proxy repaired the stream onto the other host; the client saw degraded,
  // then "restarted" — the new host rebuilt the stream's state from scratch
  // (a cold resume), which must NOT masquerade as a seamless recovery.
  EXPECT_EQ(other->StreamCount(), 1u);
  EXPECT_EQ(other_app.started.size(), 1u);
  bool saw_degraded = false;
  bool saw_recovered = false;
  bool saw_restarted = false;
  for (auto& [s, status] : observer_.flow) {
    saw_degraded |= status == FlowStatus::kDegraded;
    saw_recovered |= status == FlowStatus::kRecovered;
    saw_restarted |= status == FlowStatus::kRestarted;
  }
  EXPECT_TRUE(saw_degraded);
  EXPECT_FALSE(saw_recovered);
  EXPECT_TRUE(saw_restarted);
  EXPECT_GE(metrics_.GetCounter("burst.proxy_induced_reconnects").value(), 1);
}

TEST_F(BurstTest, GracefulDrainAlsoRepairs) {
  client_->Subscribe(MakeHeader("test"));
  sim_.RunFor(Seconds(1));
  BurstServer* serving = app1_.started.empty() ? server2_.get() : server1_.get();
  BurstServer* other = serving == server1_.get() ? server2_.get() : server1_.get();
  serving->Drain();
  sim_.RunFor(Seconds(2));
  EXPECT_EQ(other->StreamCount(), 1u);
}

TEST_F(BurstTest, ProxyFailureRepairedByPop) {
  client_->Subscribe(MakeHeader("test"));
  sim_.RunFor(Seconds(1));
  ASSERT_EQ(proxy_->StreamCount(), 1u);  // pop prefers proxy_
  // Sticky rewrite (the real BRASS host does this on stream start, §3.5):
  // ensures the repair resubscribe resumes on the same host instead of
  // starting a duplicate stream elsewhere.
  FakeAppHandler& app = app1_.started.empty() ? app2_ : app1_;
  BurstServer* serving = app1_.started.empty() ? server2_.get() : server1_.get();
  StreamHeader header(app.last_stream->header());
  header.set_brass_host(serving->host_id());
  app.last_stream->Rewrite(std::move(header).Take());
  sim_.RunFor(Seconds(1));
  proxy_->FailProxy();
  sim_.RunFor(Seconds(2));
  // POP reconnected through proxy2 and resubscribed; the stream is alive.
  EXPECT_EQ(proxy2_->StreamCount(), 1u);
  EXPECT_EQ(server1_->StreamCount() + server2_->StreamCount(), 1u);
  EXPECT_GE(metrics_.GetCounter("burst.pop_initiated_reconnects").value(), 1);
}

TEST_F(BurstTest, DeviceLossDetachesServerStreamThenGcExpires) {
  client_->Subscribe(MakeHeader("test"));
  sim_.RunFor(Seconds(1));
  FakeAppHandler& app = app1_.started.empty() ? app2_ : app1_;
  client_->SetAutoReconnect(false);
  client_->SimulateConnectionDrop();
  sim_.RunFor(Seconds(1));
  // §4 axiom 1 upstream: the host learned of the detach.
  EXPECT_EQ(app.detached.size(), 1u);
  // Pushes during the detach window are dropped, not crashing.
  app.last_stream->PushData(Value("lost"), 1);
  EXPECT_GE(metrics_.GetCounter("burst.server_pushes_dropped").value(), 1);
  // After the keep timeout, the stream state is GCed.
  sim_.RunFor(config_.server_stream_keep_timeout + Seconds(1));
  EXPECT_EQ(app.closed.size(), 1u);
  EXPECT_EQ(server1_->StreamCount() + server2_->StreamCount(), 0u);
}

TEST_F(BurstTest, RedirectMovesStreamToRewrittenTarget) {
  client_->Subscribe(MakeHeader("test"));
  sim_.RunFor(Seconds(1));
  FakeAppHandler& app = app1_.started.empty() ? app2_ : app1_;
  BurstServer* serving = app1_.started.empty() ? server2_.get() : server1_.get();
  BurstServer* other = serving == server1_.get() ? server2_.get() : server1_.get();
  FakeAppHandler& other_app = serving == server1_.get() ? app2_ : app1_;

  // §3.5 Redirects: rewrite new routing info into the stored request, then
  // terminate with kRedirect; the device retries with the new header.
  StreamHeader header(app.last_stream->header());
  header.set_brass_host(other->host_id());
  app.last_stream->Rewrite(std::move(header).Take());
  app.last_stream->Terminate(TerminateReason::kRedirect, "rebalance");
  EXPECT_EQ(serving->StreamCount(), 0u);  // redirect released the old stream
  sim_.RunFor(Seconds(2));
  EXPECT_EQ(other_app.started.size(), 1u);
  EXPECT_EQ(other->StreamCount(), 1u);
  EXPECT_EQ(client_->ActiveStreamCount(), 1u);  // stream survived the move
}

TEST_F(BurstTest, PopFailureForcesClientReconnect) {
  client_->Subscribe(MakeHeader("test"));
  sim_.RunFor(Seconds(1));
  pop_->FailPop();
  sim_.RunFor(Millis(200));
  EXPECT_FALSE(client_->connected());
  // No alternate POP in this fixture: the connector returns nullptr and
  // the client keeps backing off without crashing.
  sim_.RunFor(Seconds(2));
  EXPECT_FALSE(client_->connected());
}

TEST_F(BurstTest, SubscribeWhileDisconnectedConnectsLazily) {
  // Fresh client that never called Connect().
  FakeObserver observer2;
  BurstClient client2(&sim_, 200, client_connector_, &observer2, config_, &metrics_);
  EXPECT_FALSE(client2.connected());
  client2.Subscribe(MakeHeader("test"));
  sim_.RunFor(Seconds(1));
  EXPECT_TRUE(client2.connected());
  EXPECT_EQ(server1_->StreamCount() + server2_->StreamCount(), 1u);
}

TEST_F(BurstTest, LoadBalancedAcrossHosts) {
  for (int i = 0; i < 10; ++i) {
    client_->Subscribe(MakeHeader("test"));
  }
  sim_.RunFor(Seconds(1));
  EXPECT_EQ(server1_->StreamCount() + server2_->StreamCount(), 10u);
  EXPECT_GE(server1_->StreamCount(), 4u);
  EXPECT_GE(server2_->StreamCount(), 4u);
}

TEST_F(BurstTest, SubscribeBodyReachesTheServerOpaquely) {
  Value header = MakeHeader("test");
  client_->Subscribe(header, "opaque-binary-blob\x01\x02");
  sim_.RunFor(Seconds(1));
  FakeAppHandler& app = app1_.started.empty() ? app2_ : app1_;
  ASSERT_NE(app.last_stream, nullptr);
  EXPECT_EQ(app.last_stream->body(), "opaque-binary-blob\x01\x02");
}

TEST_F(BurstTest, AckAfterResumeStillReachesTheServer) {
  uint64_t sid = client_->Subscribe(MakeHeader("test"));
  sim_.RunFor(Seconds(1));
  client_->SimulateConnectionDrop();
  sim_.RunFor(Seconds(2));
  ASSERT_TRUE(client_->connected());
  // Without a sticky rewrite (this fixture's handlers do none), the resume
  // may have landed on either host; the ack must reach whichever one now
  // serves the stream.
  client_->Ack(sid, 99);
  sim_.RunFor(Seconds(1));
  ASSERT_EQ(app1_.acks.size() + app2_.acks.size(), 1u);
  uint64_t seq = app1_.acks.empty() ? app2_.acks.back().second : app1_.acks.back().second;
  EXPECT_EQ(seq, 99u);
}

TEST_F(BurstTest, CancelWhileDetachedClosesServerStateViaGc) {
  uint64_t sid = client_->Subscribe(MakeHeader("test"));
  sim_.RunFor(Seconds(1));
  FakeAppHandler& app = app1_.started.empty() ? app2_ : app1_;
  // Device drops and never comes back, then cancels locally while offline:
  // the cancel frame has no connection to travel on; the server state must
  // still be released by the detach GC (§3.5 garbage collection).
  client_->SetAutoReconnect(false);
  client_->SimulateConnectionDrop();
  client_->Cancel(sid);
  EXPECT_EQ(client_->ActiveStreamCount(), 0u);
  sim_.RunFor(config_.server_stream_keep_timeout + Seconds(2));
  EXPECT_EQ(app.closed.size(), 1u);
  EXPECT_EQ(server1_->StreamCount() + server2_->StreamCount(), 0u);
}

TEST_F(BurstTest, TerminationIsAtomicWithFinalData) {
  client_->Subscribe(MakeHeader("test"));
  sim_.RunFor(Seconds(1));
  FakeAppHandler& app = app1_.started.empty() ? app2_ : app1_;
  // A final batch: last data delta and the termination travel together and
  // apply atomically — the client must observe the data before the end.
  app.last_stream->Push({Delta::Data(Value("final"), 7),
                         Delta::Terminate(TerminateReason::kComplete, "eos")});
  sim_.RunFor(Seconds(1));
  ASSERT_EQ(observer_.data.size(), 1u);
  EXPECT_EQ(observer_.data[0].payload.AsString(), "final");
  ASSERT_EQ(observer_.terminated.size(), 1u);
  EXPECT_EQ(observer_.terminated[0].second, TerminateReason::kComplete);
}

TEST_F(BurstTest, RadioPromotionDelaysIdleUplinkSends) {
  // The device has been idle well past the radio threshold; the subscribe
  // pays the promotion delay before leaving the device.
  BurstConfig config = config_;
  config.radio_promotion_ms = 400.0;
  config.radio_promotion_sigma = 0.0;
  config.radio_idle_threshold = Seconds(5);
  FakeObserver observer2;
  BurstClient client2(&sim_, 300, client_connector_, &observer2, config, &metrics_);
  client2.Connect();
  sim_.RunFor(Seconds(10));  // idle: radio sleeps

  int64_t promotions_before = metrics_.GetCounter("burst.radio_promotions").value();
  client2.Subscribe(MakeHeader("test"));
  sim_.RunFor(Millis(300));
  // Not yet at the server: the radio is still waking up.
  size_t streams_at_300ms = server1_->StreamCount() + server2_->StreamCount();
  sim_.RunFor(Seconds(2));
  EXPECT_EQ(server1_->StreamCount() + server2_->StreamCount(), streams_at_300ms + 1);
  EXPECT_GT(metrics_.GetCounter("burst.radio_promotions").value(), promotions_before);

  // A second subscribe right after rides the hot radio: no promotion.
  int64_t promotions_mid = metrics_.GetCounter("burst.radio_promotions").value();
  client2.Subscribe(MakeHeader("test"));
  sim_.RunFor(Seconds(1));
  EXPECT_EQ(metrics_.GetCounter("burst.radio_promotions").value(), promotions_mid);
}

// Captures proxy -> POP response frames (for asserting on flow signals).
class FrameRecorder : public ConnectionHandler {
 public:
  void OnMessage(ConnectionEnd&, MessagePtr message) override {
    if (auto response = std::dynamic_pointer_cast<ResponseFrame>(message)) {
      responses.push_back(std::move(response));
    }
  }
  void OnDisconnect(ConnectionEnd&, DisconnectReason) override {}
  std::vector<std::shared_ptr<ResponseFrame>> responses;
};

TEST(ProxyRouteTest, ResubscribeToNewHostDetachesOldRoute) {
  Simulator sim(33);
  MetricsRegistry metrics;
  BurstConfig config;
  config.failure_detection_delay = Millis(50);
  FakeAppHandler app1;
  FakeAppHandler app2;
  FakeDirectory directory(&sim);
  BurstServer server1(&sim, 1, &app1, config, &metrics);
  BurstServer server2(&sim, 2, &app2, config, &metrics);
  directory.AddHost(1, &server1);
  directory.AddHost(2, &server2);
  ReverseProxy proxy(&sim, ProxyId(1), 0, &directory, config, &metrics);

  auto [pop_end, proxy_end] = CreateConnection(&sim, LatencyModel::Fixed(2.0), Millis(50));
  FrameRecorder pop;
  pop_end->set_handler(&pop);
  proxy.AttachPopConnection(std::move(proxy_end));

  StreamKey key{100, 1};
  auto subscribe = std::make_shared<SubscribeFrame>();
  subscribe->key = key;
  subscribe->header = std::move(
      StreamHeader().set_app("test").set_viewer(100).set_brass_host(1)).Take();  // sticky: host 1
  pop_end->Send(subscribe);
  sim.RunFor(Seconds(1));
  ASSERT_EQ(server1.StreamCount(), 1u);
  EXPECT_EQ(proxy.HostConnStreamCount(1), 1u);

  // The stream is re-routed (rebalance): a subscribe for the same key
  // arrives sticky to host 2, with no termination of the old route first.
  auto moved = std::make_shared<SubscribeFrame>();
  moved->key = key;
  moved->header = std::move(
      StreamHeader().set_app("test").set_viewer(100).set_brass_host(2)).Take();
  moved->resubscribe = true;
  pop_end->Send(moved);
  sim.RunFor(Seconds(1));
  EXPECT_EQ(server2.StreamCount(), 1u);
  // Regression (bookkeeping leak): the key must leave host 1's stream set
  // when the route changes, not linger there.
  EXPECT_EQ(proxy.HostConnStreamCount(1), 0u);
  EXPECT_EQ(proxy.HostConnStreamCount(2), 1u);
  EXPECT_EQ(proxy.StreamCount(), 1u);

  // Host 1 dying later must not disturb the moved stream: no spurious
  // degraded signal downstream, no duplicate resubscribe to host 2.
  size_t responses_before = pop.responses.size();
  int64_t reconnects_before = metrics.GetCounter("burst.proxy_induced_reconnects").value();
  size_t server2_subscribes = app2.started.size() + app2.resumed.size();
  server1.FailHost();
  sim.RunFor(Seconds(2));
  EXPECT_EQ(metrics.GetCounter("burst.proxy_induced_reconnects").value(), reconnects_before);
  EXPECT_EQ(app2.started.size() + app2.resumed.size(), server2_subscribes);
  EXPECT_EQ(server2.StreamCount(), 1u);
  for (size_t i = responses_before; i < pop.responses.size(); ++i) {
    for (const Delta& delta : pop.responses[i]->batch) {
      if (delta.kind == DeltaKind::kFlowStatus) {
        EXPECT_NE(delta.status, FlowStatus::kDegraded);
      }
    }
  }
}

TEST(FramesTest, DeltaFactories) {
  Delta d = Delta::Data(Value(1), 3);
  EXPECT_EQ(d.kind, DeltaKind::kData);
  EXPECT_EQ(d.seq, 3u);
  Delta f = Delta::Flow(FlowStatus::kRecovered, "x");
  EXPECT_EQ(f.kind, DeltaKind::kFlowStatus);
  EXPECT_EQ(f.status, FlowStatus::kRecovered);
  Delta r = Delta::Rewrite(Value(ValueMap{}));
  EXPECT_EQ(r.kind, DeltaKind::kRewrite);
  Delta t = Delta::Terminate(TerminateReason::kRedirect, "go");
  EXPECT_EQ(t.kind, DeltaKind::kTermination);
  EXPECT_EQ(t.reason, TerminateReason::kRedirect);
}

TEST(FramesTest, StreamKeyComparisonAndHash) {
  StreamKey a{1, 2};
  StreamKey b{1, 2};
  StreamKey c{1, 3};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(a < c);
  StreamKeyHash hasher;
  EXPECT_EQ(hasher(a), hasher(b));
  EXPECT_NE(hasher(a), hasher(c));
}

TEST(FramesTest, ToStringCoverage) {
  EXPECT_STREQ(ToString(DeltaKind::kRewrite), "rewrite_request");
  EXPECT_STREQ(ToString(FlowStatus::kDegraded), "degraded");
  EXPECT_STREQ(ToString(FlowStatus::kRestarted), "restarted");
  EXPECT_STREQ(ToString(TerminateReason::kCancelled), "cancelled");
}

TEST(FramesTest, ResumeTokenZeroIsDistinctFromAbsent) {
  // "No token" and "token 0" must be distinguishable: a durable stream's
  // acked offset legitimately starts at 0, while an absent token means
  // "start at the log head".
  Value none = std::move(StreamHeader().set_app("t").set_viewer(1)).Take();
  StreamHeaderView absent(none);
  EXPECT_FALSE(absent.has_resume_token());
  EXPECT_EQ(absent.resume_token(), 0);

  Value zero = std::move(StreamHeader().set_app("t").set_viewer(1).set_resume_token(0)).Take();
  StreamHeaderView explicit_zero(zero);
  EXPECT_TRUE(explicit_zero.has_resume_token());
  EXPECT_EQ(explicit_zero.resume_token(), 0);
  EXPECT_FALSE(explicit_zero.durable());

  Value durable = std::move(
      StreamHeader().set_app("t").set_viewer(1).set_durable(true).set_resume_token(7)).Take();
  StreamHeaderView view(durable);
  EXPECT_TRUE(view.durable());
  EXPECT_TRUE(view.has_resume_token());
  EXPECT_EQ(view.resume_token(), 7);
}

// Regression: the reconnect backoff drew uniformly from the same base
// window on every consecutive failure, so a dead POP was hammered at a
// constant rate forever. It must now grow (capped exponential, full
// jitter) and reset once a connect succeeds.
TEST(BackoffTest, GrowsUnderRepeatedFailureAndResetsOnSuccess) {
  Simulator sim(7);
  MetricsRegistry metrics;
  BurstConfig config;
  config.reconnect_backoff_min = Millis(50);
  config.reconnect_backoff_max = Millis(200);
  config.reconnect_backoff_cap = Seconds(5);

  std::vector<SimTime> attempts;
  bool pop_reachable = false;
  FakeObserver observer;
  FrameRecorder far_side;
  std::shared_ptr<ConnectionEnd> far_end_keep;
  BurstClient::Connector connector = [&](int64_t, BurstClient::ConnectDone done) {
    attempts.push_back(sim.Now());
    if (!pop_reachable) {
      done(nullptr);
      return;
    }
    auto [device_end, pop_end] = CreateConnection(&sim, LatencyModel::Fixed(1.0), Millis(50));
    pop_end->set_handler(&far_side);
    far_end_keep = pop_end;
    done(std::move(device_end));
  };
  BurstClient client(&sim, 100, connector, &observer, config, &metrics);

  client.Subscribe(std::move(StreamHeader().set_app("test").set_viewer(100)).Take());
  sim.RunFor(Seconds(30));

  ASSERT_GE(attempts.size(), 6u);
  std::vector<SimTime> gaps;
  for (size_t i = 1; i < attempts.size(); ++i) {
    gaps.push_back(attempts[i] - attempts[i - 1]);
  }
  // The first retry draws the unchanged base window.
  EXPECT_GE(gaps[0], Millis(50));
  EXPECT_LE(gaps[0], Millis(200));
  // Later retries must space out past the base window (the regression kept
  // every gap <= reconnect_backoff_max) while staying under the cap.
  SimTime max_gap = 0;
  for (SimTime gap : gaps) {
    max_gap = std::max(max_gap, gap);
    EXPECT_GE(gap, Millis(50));
    EXPECT_LE(gap, Seconds(5));
  }
  EXPECT_GT(max_gap, Millis(200));

  // A successful connect resets the streak: the next drop's first retry is
  // back in the base window instead of the widened one.
  pop_reachable = true;
  sim.RunFor(Seconds(10));
  ASSERT_TRUE(client.connected());
  pop_reachable = false;
  size_t attempts_before = attempts.size();
  SimTime drop_at = sim.Now();
  client.SimulateConnectionDrop();
  sim.RunFor(Seconds(1));
  ASSERT_GT(attempts.size(), attempts_before);
  SimTime first_retry_gap = attempts[attempts_before] - drop_at;
  EXPECT_GE(first_retry_gap, Millis(50));
  EXPECT_LE(first_retry_gap, Millis(200));
}

TEST_F(BurstTest, ResumeAfterKeepTimeoutExpirySignalsRestart) {
  uint64_t sid = client_->Subscribe(MakeHeader("test"));
  sim_.RunFor(Seconds(1));

  // The device goes dark for longer than the server's keep timeout (10s in
  // this fixture): the host GCs the stream state (the retention grace from
  // the paper's resumption protocol).
  client_->SetAutoReconnect(false);
  client_->SimulateConnectionDrop();
  sim_.RunFor(Seconds(15));

  client_->SetAutoReconnect(true);
  client_->Connect();
  sim_.RunFor(Seconds(2));
  ASSERT_TRUE(client_->connected());

  // Regression: this used to surface as kRecovered — indistinguishable from
  // a seamless resume — even though the server rebuilt the stream from
  // scratch and any gap was silently lost. The app layer needs the
  // "restarted" signal to re-snapshot.
  bool saw_restarted = false;
  for (auto& [s, status] : observer_.flow) {
    if (s == sid && status == FlowStatus::kRestarted) {
      saw_restarted = true;
    }
  }
  EXPECT_TRUE(saw_restarted);
  // Server-side it was a fresh start, not a resume.
  EXPECT_EQ(app1_.resumed.size() + app2_.resumed.size(), 0u);
  EXPECT_EQ(app1_.started.size() + app2_.started.size(), 2u);
}

}  // namespace
}  // namespace bladerunner
