// Unit tests for the WAS: schema resolvers against TAO, mutations +
// publish specs, privacy checks, subscription resolution, payload fetch.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/pylon/cluster.h"
#include "src/trace/analysis.h"
#include "src/was/messages.h"
#include "src/was/resolvers.h"
#include "src/was/server.h"

namespace bladerunner {
namespace {

class WasTest : public ::testing::Test {
 protected:
  WasTest() : topology_(Topology::OneRegion()), sim_(31) {
    tao_ = std::make_unique<TaoStore>(&sim_, &topology_, TaoConfig{}, &metrics_);
    PylonConfig pylon_config;
    pylon_config.servers_per_region = 1;
    pylon_config.kv_nodes_per_region = 3;
    pylon_ = std::make_unique<PylonCluster>(&sim_, &topology_, pylon_config, &metrics_, &trace_);
    was_ = std::make_unique<WebAppServer>(&sim_, 0, tao_.get(), pylon_.get(), WasConfig{},
                                          &metrics_, &trace_);
    InstallSocialSchema(*was_);

    alice_ = CreateUser(*tao_, "alice", "en");
    bob_ = CreateUser(*tao_, "bob", "en");
    carol_ = CreateUser(*tao_, "carol", "es");
    MakeFriends(*tao_, alice_, bob_);
    video_ = CreateVideo(*tao_, alice_, "the video");
    thread_ = CreateThread(*tao_, {alice_, bob_});
    sim_.RunFor(Seconds(1));
  }

  // Synchronous RPC helper against the WAS.
  template <typename Response, typename Request>
  std::shared_ptr<Response> Call(const std::string& method, std::shared_ptr<Request> request) {
    RpcChannel channel(&sim_, was_->rpc(), LatencyModel::Fixed(0.1));
    std::shared_ptr<Response> out;
    channel.Call(method, request, [&out](RpcStatus status, MessagePtr response) {
      ASSERT_EQ(status, RpcStatus::kOk);
      out = std::static_pointer_cast<Response>(response);
    });
    sim_.RunFor(Seconds(30));
    return out;
  }

  std::shared_ptr<WasQueryResponse> Query(const std::string& text, UserId viewer) {
    auto request = std::make_shared<WasQueryRequest>();
    request->query = text;
    request->viewer = viewer;
    return Call<WasQueryResponse>("was.query", request);
  }

  std::shared_ptr<WasMutateResponse> Mutate(const std::string& text, UserId viewer) {
    auto request = std::make_shared<WasMutateRequest>();
    request->mutation = text;
    request->viewer = viewer;
    request->created_at = sim_.Now();
    return Call<WasMutateResponse>("was.mutate", request);
  }

  Topology topology_;
  Simulator sim_;
  MetricsRegistry metrics_;
  TraceCollector trace_;
  std::unique_ptr<TaoStore> tao_;
  std::unique_ptr<PylonCluster> pylon_;
  std::unique_ptr<WebAppServer> was_;
  UserId alice_ = 0;
  UserId bob_ = 0;
  UserId carol_ = 0;
  ObjectId video_ = 0;
  ObjectId thread_ = 0;
};

TEST_F(WasTest, UserQuery) {
  auto response = Query("{ user(id: " + std::to_string(alice_) + ") { name language } }", bob_);
  ASSERT_NE(response, nullptr);
  EXPECT_TRUE(response->errors.empty());
  EXPECT_EQ(response->data.Get("user").Get("name").AsString(), "alice");
}

TEST_F(WasTest, PostCommentThenPollSeesIt) {
  auto post = Mutate("mutation { postComment(video: " + std::to_string(video_) +
                         ", text: \"nice\", language: \"en\") { id } }",
                     bob_);
  ASSERT_NE(post, nullptr);
  EXPECT_TRUE(post->ok);
  ObjectId comment_id = post->data.Get("postComment").Get("id").AsInt(0);
  EXPECT_NE(comment_id, 0);

  auto poll = Query("{ comments(video: " + std::to_string(video_) +
                        ", after: 0, first: 10) { id text author } }",
                    alice_);
  ASSERT_NE(poll, nullptr);
  ASSERT_EQ(poll->data.Get("comments").Size(), 1u);
  EXPECT_EQ(poll->data.Get("comments").AsList()[0].Get("text").AsString(), "nice");
  EXPECT_EQ(poll->data.Get("comments").AsList()[0].Get("author").AsInt(), bob_);
}

TEST_F(WasTest, CommentPollCostIncludesRangeAndPointReads) {
  Mutate("mutation { postComment(video: " + std::to_string(video_) +
             ", text: \"a\", language: \"en\") { id } }",
         bob_);
  auto poll = Query("{ comments(video: " + std::to_string(video_) +
                        ", after: 0, first: 10) { id } }",
                    alice_);
  ASSERT_NE(poll, nullptr);
  EXPECT_GE(poll->cost.range_reads, 1u);
  EXPECT_GE(poll->cost.point_reads, 1u);  // per-comment object read
}

TEST_F(WasTest, BlockedAuthorsCommentsAreFilteredFromPolls) {
  BlockUser(*tao_, alice_, carol_);
  sim_.RunFor(Seconds(1));
  Mutate("mutation { postComment(video: " + std::to_string(video_) +
             ", text: \"spam\", language: \"es\") { id } }",
         carol_);
  auto poll = Query("{ comments(video: " + std::to_string(video_) +
                        ", after: 0, first: 10) { id suppressed } }",
                    alice_);
  ASSERT_NE(poll, nullptr);
  // The blocked author's comment surfaces only as a contentless tombstone
  // (so pagination watermarks can advance), never as content.
  ASSERT_EQ(poll->data.Get("comments").Size(), 1u);
  const Value& entry = poll->data.Get("comments").AsList()[0];
  EXPECT_TRUE(entry.Get("suppressed").AsBool(false));
  EXPECT_FALSE(entry.Has("text"));
  // But a non-blocking viewer sees the real comment.
  auto poll2 = Query("{ comments(video: " + std::to_string(video_) +
                         ", after: 0, first: 10) { id text suppressed } }",
                     bob_);
  ASSERT_EQ(poll2->data.Get("comments").Size(), 1u);
  EXPECT_FALSE(poll2->data.Get("comments").AsList()[0].Get("suppressed").AsBool(false));
}

TEST_F(WasTest, MutationPublishesToPylonWithRankingDelay) {
  SimTime before = sim_.Now();
  Mutate("mutation { postComment(video: " + std::to_string(video_) +
             ", text: \"x\", language: \"en\") { id } }",
         bob_);
  EXPECT_EQ(metrics_.GetCounter("was.publishes").value(), 1);
  SpanQuery query;
  query.name = "was.publish";
  query.annotation_key = "ranked";
  query.annotation_value = Value(true);
  Histogram ranked = SpanDurationHistogram(trace_, query);
  ASSERT_EQ(ranked.count(), 1u);
  // Table 3: ~2s for LVC updates (ranking ~1.8s).
  EXPECT_GT(ranked.Mean(), static_cast<double>(Seconds(1)));
  EXPECT_LT(ranked.Mean(), static_cast<double>(Seconds(5)));
  (void)before;
}

TEST_F(WasTest, NonRankedMutationPublishesFaster) {
  Mutate("mutation { setTyping(thread: " + std::to_string(thread_) + ", typing: true) }", bob_);
  SpanQuery query;
  query.name = "was.publish";
  query.annotation_key = "ranked";
  query.annotation_value = Value(false);
  Histogram other = SpanDurationHistogram(trace_, query);
  ASSERT_GE(other.count(), 1u);
  // Table 3: ~240ms for non-ranked updates.
  EXPECT_GT(other.Mean(), static_cast<double>(Millis(100)));
  EXPECT_LT(other.Mean(), static_cast<double>(Millis(800)));
}

TEST_F(WasTest, SendMessageAssignsConsecutiveSeqPerMailbox) {
  for (int i = 0; i < 3; ++i) {
    Mutate("mutation { sendMessage(thread: " + std::to_string(thread_) +
               ", text: \"m\") { id } }",
           alice_);
  }
  auto mailbox = Query("{ mailbox(afterSeq: 0, first: 10) { id seq } }", bob_);
  ASSERT_NE(mailbox, nullptr);
  const ValueList& messages = mailbox->data.Get("mailbox").AsList();
  ASSERT_EQ(messages.size(), 3u);
  EXPECT_EQ(messages[0].Get("seq").AsInt(), 1);
  EXPECT_EQ(messages[1].Get("seq").AsInt(), 2);
  EXPECT_EQ(messages[2].Get("seq").AsInt(), 3);
}

TEST_F(WasTest, MailboxAfterSeqSkipsDelivered) {
  for (int i = 0; i < 3; ++i) {
    Mutate("mutation { sendMessage(thread: " + std::to_string(thread_) +
               ", text: \"m\") { id } }",
           alice_);
  }
  auto mailbox = Query("{ mailbox(afterSeq: 2, first: 10) { seq } }", bob_);
  ASSERT_EQ(mailbox->data.Get("mailbox").Size(), 1u);
  EXPECT_EQ(mailbox->data.Get("mailbox").AsList()[0].Get("seq").AsInt(), 3);
}

TEST_F(WasTest, SubscriptionResolutionLvc) {
  auto request = std::make_shared<WasResolveSubRequest>();
  request->subscription =
      "subscription { liveVideoComments(videoId: " + std::to_string(video_) + ") { id } }";
  request->viewer = alice_;
  auto response = Call<WasResolveSubResponse>("was.resolve_subscription", request);
  ASSERT_NE(response, nullptr);
  EXPECT_TRUE(response->ok);
  EXPECT_EQ(response->app, "LVC");
  // Main topic plus one per-author topic per friend (alice's one friend is
  // bob), so hot-mode per-author publishes reach her (§3.4).
  ASSERT_EQ(response->topics.size(), 2u);
  EXPECT_EQ(response->topics[0], LvcTopic(video_));
  EXPECT_EQ(response->topics[1], LvcUserTopic(video_, bob_));
}

TEST_F(WasTest, SubscriptionResolutionActiveStatusFansToFriends) {
  auto request = std::make_shared<WasResolveSubRequest>();
  request->subscription = "subscription { activeStatus { online } }";
  request->viewer = alice_;
  auto response = Call<WasResolveSubResponse>("was.resolve_subscription", request);
  ASSERT_NE(response, nullptr);
  EXPECT_TRUE(response->ok);
  EXPECT_EQ(response->app, "AS");
  ASSERT_EQ(response->topics.size(), 1u);  // alice has one friend: bob
  EXPECT_EQ(response->topics[0], ActiveStatusTopic(bob_));
  EXPECT_EQ(response->context.Get("friends").Size(), 1u);
}

TEST_F(WasTest, SubscriptionResolutionTypingExcludesViewer) {
  auto request = std::make_shared<WasResolveSubRequest>();
  request->subscription =
      "subscription { typingIndicator(threadId: " + std::to_string(thread_) + ") { user } }";
  request->viewer = alice_;
  auto response = Call<WasResolveSubResponse>("was.resolve_subscription", request);
  ASSERT_NE(response, nullptr);
  ASSERT_EQ(response->topics.size(), 1u);
  EXPECT_EQ(response->topics[0], TypingTopic(thread_, bob_));
}

TEST_F(WasTest, SubscriptionResolutionUnknownFieldFails) {
  auto request = std::make_shared<WasResolveSubRequest>();
  request->subscription = "subscription { nonsense { x } }";
  request->viewer = alice_;
  auto response = Call<WasResolveSubResponse>("was.resolve_subscription", request);
  ASSERT_NE(response, nullptr);
  EXPECT_FALSE(response->ok);
}

TEST_F(WasTest, FetchReturnsPayloadWithPrivacyCheck) {
  auto post = Mutate("mutation { postComment(video: " + std::to_string(video_) +
                         ", text: \"hi\", language: \"en\") { id } }",
                     bob_);
  ObjectId comment_id = post->data.Get("postComment").Get("id").AsInt(0);

  auto fetch = std::make_shared<WasFetchRequest>();
  fetch->app = "LVC";
  fetch->metadata.Set("id", comment_id);
  fetch->metadata.Set("author", bob_);
  fetch->viewers = {alice_};
  auto response = Call<WasFetchResponse>("was.fetch", fetch);
  ASSERT_NE(response, nullptr);
  ASSERT_EQ(response->allowed.size(), 1u);
  EXPECT_TRUE(response->allowed[0]);
  EXPECT_EQ(response->payload.Get("text").AsString(), "hi");
  EXPECT_GT(response->version, 0u);
}

TEST_F(WasTest, FetchDeniedForBlockedViewer) {
  BlockUser(*tao_, alice_, bob_);
  sim_.RunFor(Seconds(1));
  auto post = Mutate("mutation { postComment(video: " + std::to_string(video_) +
                         ", text: \"hi\", language: \"en\") { id } }",
                     bob_);
  ObjectId comment_id = post->data.Get("postComment").Get("id").AsInt(0);

  auto fetch = std::make_shared<WasFetchRequest>();
  fetch->app = "LVC";
  fetch->metadata.Set("id", comment_id);
  fetch->metadata.Set("author", bob_);
  fetch->viewers = {alice_};
  auto response = Call<WasFetchResponse>("was.fetch", fetch);
  ASSERT_NE(response, nullptr);
  ASSERT_EQ(response->allowed.size(), 1u);
  EXPECT_FALSE(response->allowed[0]);
}

TEST_F(WasTest, ActiveFriendsReflectsHeartbeatTtl) {
  Mutate("mutation { heartbeatOnline }", bob_);
  auto active = Query("{ activeFriends { id } }", alice_);
  ASSERT_NE(active, nullptr);
  EXPECT_EQ(active->data.Get("activeFriends").Size(), 1u);

  sim_.RunFor(Minutes(2));  // TTL expires
  active = Query("{ activeFriends { id } }", alice_);
  EXPECT_EQ(active->data.Get("activeFriends").Size(), 0u);
}

TEST_F(WasTest, StoriesTrayRanksContainers) {
  Mutate("mutation { postStory(text: \"s1\") { id } }", bob_);
  auto tray = Query("{ storiesTray(first: 5) { owner rank } }", alice_);
  ASSERT_NE(tray, nullptr);
  ASSERT_EQ(tray->data.Get("storiesTray").Size(), 1u);
  EXPECT_EQ(tray->data.Get("storiesTray").AsList()[0].Get("owner").AsInt(), bob_);
  // And the poll paid intersect-class costs (§3.4).
  EXPECT_GE(tray->cost.intersect_reads, 2u);
}

TEST_F(WasTest, ParseErrorSurfacesInResponse) {
  auto response = Query("{ unbalanced", alice_);
  ASSERT_NE(response, nullptr);
  ASSERT_FALSE(response->errors.empty());
}

TEST_F(WasTest, CommentsByFriendsIntersect) {
  Mutate("mutation { postComment(video: " + std::to_string(video_) +
             ", text: \"friend comment\", language: \"en\") { id } }",
         bob_);
  Mutate("mutation { postComment(video: " + std::to_string(video_) +
             ", text: \"stranger comment\", language: \"es\") { id } }",
         carol_);
  auto result = Query("{ commentsByFriends(video: " + std::to_string(video_) +
                          ", after: 0, first: 10) { id author } }",
                      alice_);
  ASSERT_NE(result, nullptr);
  ASSERT_EQ(result->data.Get("commentsByFriends").Size(), 1u);
  EXPECT_EQ(result->data.Get("commentsByFriends").AsList()[0].Get("author").AsInt(), bob_);
  EXPECT_GE(result->cost.intersect_reads, 1u);
}

TEST_F(WasTest, CpuAccountingAccumulates) {
  Query("{ user(id: " + std::to_string(alice_) + ") { name } }", bob_);
  EXPECT_GT(metrics_.GetCounter("was.cpu_us").value(), 0);
}

}  // namespace
}  // namespace bladerunner
