// Behavioral tests of the five BRASS applications through the full stack:
// per-user filtering, rate limiting, batching, tray management, reliable
// delivery, and the delivery-accounting invariants Fig. 8 relies on.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/cluster.h"
#include "src/core/device.h"
#include "src/was/resolvers.h"
#include "src/workload/social_gen.h"

namespace bladerunner {
namespace {

class AppsTest : public ::testing::Test {
 protected:
  void SetUp() override { Rebuild({}); }

  void Rebuild(ClusterConfig config) {
    config.seed = 4242;
    cluster_ = std::make_unique<BladerunnerCluster>(config, Topology::OneRegion());
    // Hand-built graph for precise control.
    alice_ = CreateUser(cluster_->tao(), "alice", "en");
    bob_ = CreateUser(cluster_->tao(), "bob", "en");
    carol_ = CreateUser(cluster_->tao(), "carol", "es");
    dave_ = CreateUser(cluster_->tao(), "dave", "en");
    MakeFriends(cluster_->tao(), alice_, bob_);
    MakeFriends(cluster_->tao(), alice_, carol_);
    video_ = CreateVideo(cluster_->tao(), alice_, "v");
    thread_ = CreateThread(cluster_->tao(), {alice_, bob_});
    cluster_->sim().RunFor(Seconds(2));
  }

  std::unique_ptr<DeviceAgent> Device(UserId user) {
    return std::make_unique<DeviceAgent>(cluster_.get(), user, 0, DeviceProfile::kWifi);
  }

  int64_t Counter(const std::string& name) {
    return cluster_->metrics().GetCounter(name).value();
  }

  std::unique_ptr<BladerunnerCluster> cluster_;
  UserId alice_ = 0;
  UserId bob_ = 0;
  UserId carol_ = 0;
  UserId dave_ = 0;
  ObjectId video_ = 0;
  ObjectId thread_ = 0;
};

// ---- LiveVideoComments ----

TEST_F(AppsTest, LvcRateLimitsToOnePushPerInterval) {
  auto viewer = Device(alice_);
  auto poster = Device(bob_);
  viewer->SubscribeLvc(video_);
  cluster_->sim().RunFor(Seconds(3));

  // Burst of 30 comments within one second.
  for (int i = 0; i < 30; ++i) {
    poster->PostComment(video_, "burst" + std::to_string(i), "en");
  }
  // Comments take ~2s of ranking, then land in the buffer; pushes happen
  // at most once per 2s per stream, and buffered comments expire at 10s.
  cluster_->sim().RunFor(Seconds(20));

  // With a 2s push interval and a 10s max age, at most ~6-7 of the 30 can
  // ever be delivered.
  EXPECT_GE(viewer->payloads_received(), 1u);
  EXPECT_LE(viewer->payloads_received(), 8u);
  // The rest were filtered/aged out: decisions > deliveries.
  EXPECT_GT(Counter("brass.decisions"), static_cast<int64_t>(viewer->payloads_received()));
}

TEST_F(AppsTest, LvcFiltersForeignLanguageComments) {
  auto viewer = Device(alice_);  // language en
  auto poster = Device(dave_);
  viewer->SubscribeLvc(video_);
  cluster_->sim().RunFor(Seconds(3));

  for (int i = 0; i < 10; ++i) {
    poster->PostComment(video_, "hola", "es");  // foreign to alice
    cluster_->sim().RunFor(Seconds(1));
  }
  cluster_->sim().RunFor(Seconds(10));
  EXPECT_EQ(viewer->payloads_received(), 0u);
  EXPECT_GT(Counter("brass.filtered"), 0);
}

TEST_F(AppsTest, LvcDoesNotEchoOwnComments) {
  auto viewer = Device(alice_);
  viewer->SubscribeLvc(video_);
  cluster_->sim().RunFor(Seconds(3));
  for (int i = 0; i < 5; ++i) {
    viewer->PostComment(video_, "mine", "en");
    cluster_->sim().RunFor(Seconds(1));
  }
  cluster_->sim().RunFor(Seconds(10));
  EXPECT_EQ(viewer->payloads_received(), 0u);
}

TEST_F(AppsTest, LvcViewerLanguageComesFromSubscriptionContext) {
  // carol's language is Spanish (from her TAO profile, resolved into the
  // subscription context): her friend alice's English comments are foreign
  // and filtered; Spanish ones are delivered.
  auto viewer = Device(carol_);
  auto poster = Device(alice_);  // alice and carol are friends
  viewer->SubscribeLvc(video_);
  cluster_->sim().RunFor(Seconds(3));
  for (int i = 0; i < 8; ++i) {
    poster->PostComment(video_, "hello", "en");
    cluster_->sim().RunFor(Seconds(1));
  }
  cluster_->sim().RunFor(Seconds(10));
  EXPECT_EQ(viewer->payloads_received(), 0u);
  for (int i = 0; i < 8; ++i) {
    poster->PostComment(video_, "hola", "es");
    cluster_->sim().RunFor(Seconds(1));
  }
  cluster_->sim().RunFor(Seconds(10));
  EXPECT_GE(viewer->payloads_received(), 1u);
}

TEST_F(AppsTest, LvcPrivacyFilteredAtFetchTime) {
  BlockUser(cluster_->tao(), alice_, bob_);
  cluster_->sim().RunFor(Seconds(1));
  auto viewer = Device(alice_);
  auto poster = Device(bob_);
  viewer->SubscribeLvc(video_);
  cluster_->sim().RunFor(Seconds(3));
  for (int i = 0; i < 8; ++i) {
    poster->PostComment(video_, "blocked author", "en");
    cluster_->sim().RunFor(Seconds(1));
  }
  cluster_->sim().RunFor(Seconds(10));
  EXPECT_EQ(viewer->payloads_received(), 0u);
  EXPECT_GT(Counter("lvc.privacy_filtered"), 0);
}

TEST_F(AppsTest, LvcHotVideoStrategySwitch) {
  // Hammer the video until its comment index partitions past the hot
  // threshold; the WAS then pre-ranks: ordinary comments publish to
  // per-author topics (reaching only the author's friends via the
  // /LVC/<vid>/<friend> subscriptions), and low-ranked ones are discarded
  // before Pylon (§3.4).
  // Simulation-scale bursts are orders of magnitude below production's
  // 1M comments/sec; lower the per-partition write capacity so the index
  // heats at bench scale.
  ClusterConfig config;
  config.tao.hot_index_writes_per_sec = 0.5;
  Rebuild(config);

  auto viewer = Device(alice_);
  auto friend_poster = Device(bob_);     // alice's friend
  auto stranger_poster = Device(dave_);  // not alice's friend
  viewer->SubscribeLvc(video_);
  cluster_->sim().RunFor(Seconds(3));

  // Heat the index: a sustained burst.
  for (int s = 0; s < 12; ++s) {
    for (int k = 0; k < 8; ++k) {
      stranger_poster->PostComment(video_, "burst", "en");
    }
    cluster_->sim().RunFor(Seconds(1));
  }
  EXPECT_GT(Counter("was.lvc_hot_comments"), 0);
  EXPECT_GT(Counter("was.lvc_hot_discarded"), 0);

  // While hot, a friend's ordinary comment goes to /LVC/<vid>/<bob> and
  // still reaches alice (she subscribes to her friends' author topics).
  uint64_t before = viewer->payloads_received();
  for (int i = 0; i < 6; ++i) {
    friend_poster->PostComment(video_, "from a friend", "en");
    cluster_->sim().RunFor(Seconds(2));
  }
  cluster_->sim().RunFor(Seconds(15));
  EXPECT_GT(viewer->payloads_received(), before);
}

// ---- ActiveStatus ----

TEST_F(AppsTest, ActiveStatusPushesBatchedDiffsNotEveryHeartbeat) {
  auto watcher = Device(alice_);
  auto friend_device = Device(bob_);
  watcher->SubscribeActiveStatus();
  cluster_->sim().RunFor(Seconds(3));

  friend_device->StartHeartbeat(Seconds(30));
  cluster_->sim().RunFor(Minutes(3));  // 6 heartbeats
  friend_device->StopHeartbeat();

  // One "came online" batch, not one push per heartbeat.
  EXPECT_GE(watcher->payloads_received(), 1u);
  EXPECT_LE(watcher->payloads_received(), 3u);

  // After the TTL lapses the app pushes the "went offline" diff.
  uint64_t before = watcher->payloads_received();
  cluster_->sim().RunFor(Minutes(2));
  EXPECT_GT(watcher->payloads_received(), before);
}

TEST_F(AppsTest, ActiveStatusOnlyForFriends) {
  auto watcher = Device(alice_);
  auto stranger = Device(dave_);  // not a friend of alice
  watcher->SubscribeActiveStatus();
  cluster_->sim().RunFor(Seconds(3));
  stranger->StartHeartbeat(Seconds(30));
  cluster_->sim().RunFor(Minutes(2));
  stranger->StopHeartbeat();
  EXPECT_EQ(watcher->payloads_received(), 0u);
}

// ---- TypingIndicator ----

TEST_F(AppsTest, TypingEventsPushImmediately) {
  auto watcher = Device(alice_);
  auto typist = Device(bob_);
  watcher->SubscribeTyping(thread_);
  cluster_->sim().RunFor(Seconds(3));

  typist->SetTyping(thread_, true);
  cluster_->sim().RunFor(Seconds(3));
  EXPECT_EQ(watcher->payloads_received(), 1u);
  typist->SetTyping(thread_, false);
  cluster_->sim().RunFor(Seconds(3));
  EXPECT_EQ(watcher->payloads_received(), 2u);
}

TEST_F(AppsTest, TypingNotDeliveredToNonMembers) {
  auto outsider = Device(dave_);
  auto typist = Device(bob_);
  // dave isn't in the thread: resolution yields the other members' topics,
  // none of which is dave's counterparty... he still subscribes to the
  // thread; he gets alice's typing but not his own. Here bob types and
  // dave IS subscribed to bob's typing topic (he subscribed to the
  // thread), so instead verify a *wrong thread* yields nothing.
  ObjectId other_thread = CreateThread(cluster_->tao(), {carol_, dave_});
  cluster_->sim().RunFor(Seconds(1));
  outsider->SubscribeTyping(other_thread);
  cluster_->sim().RunFor(Seconds(3));
  typist->SetTyping(thread_, true);
  cluster_->sim().RunFor(Seconds(3));
  EXPECT_EQ(outsider->payloads_received(), 0u);
}

// ---- Stories ----

TEST_F(AppsTest, StoriesTrayAddAndRemove) {
  StoriesConfig stories;
  stories.tray_size = 1;  // tiny tray forces evictions
  ClusterConfig config;
  config.apps.stories = stories;
  Rebuild(config);

  auto watcher = Device(alice_);
  auto friend1 = Device(bob_);
  auto friend2 = Device(carol_);
  watcher->SubscribeStories();
  cluster_->sim().RunFor(Seconds(3));

  std::vector<std::string> kinds;
  watcher->set_payload_hook([&kinds](uint64_t, const Value& payload) {
    kinds.push_back(payload.Get("__type").AsString());
  });

  friend1->PostStory("first");
  cluster_->sim().RunFor(Seconds(5));
  friend2->PostStory("second");
  friend2->PostStory("third");
  cluster_->sim().RunFor(Seconds(10));

  // The watcher saw at least one container add; with tray_size=1 a
  // higher-ranked second container evicts the first (a remove push).
  ASSERT_FALSE(kinds.empty());
  bool saw_add = false;
  for (const std::string& k : kinds) {
    if (k == "StoryTrayAddContainer" || k == "StoryTrayAddStory") {
      saw_add = true;
    }
  }
  EXPECT_TRUE(saw_add);
}

// ---- Messenger ----

TEST_F(AppsTest, MessengerRecoversDroppedPublishViaGapPoll) {
  auto receiver = Device(alice_);
  auto sender = Device(bob_);
  receiver->SubscribeMailbox(0);
  cluster_->sim().RunFor(Seconds(3));

  sender->SendMessage(thread_, "m1");
  cluster_->sim().RunFor(Seconds(3));
  ASSERT_EQ(receiver->last_messenger_seq(), 1u);

  // Simulate a dropped publish: write the message through the WAS executor
  // directly with Pylon publishing disabled for this one message — do it
  // by sending while ALL pylon servers are down, so the publish is lost
  // but the TAO write persists.
  for (size_t i = 0; i < cluster_->pylon()->NumServers(); ++i) {
    cluster_->pylon()->ServerAt(i)->SetAvailable(false);
  }
  sender->SendMessage(thread_, "m2-dropped");
  cluster_->sim().RunFor(Seconds(3));
  for (size_t i = 0; i < cluster_->pylon()->NumServers(); ++i) {
    cluster_->pylon()->ServerAt(i)->SetAvailable(true);
  }
  EXPECT_EQ(receiver->last_messenger_seq(), 1u);  // m2 lost in transit

  // The next successful publish carries seq 3; the BRASS detects the gap
  // (expected 2) and polls the mailbox to recover m2.
  sender->SendMessage(thread_, "m3");
  cluster_->sim().RunFor(Seconds(10));
  EXPECT_EQ(receiver->last_messenger_seq(), 3u);
  EXPECT_EQ(receiver->messenger_order_violations(), 0u);
  EXPECT_GE(Counter("messenger.gaps_detected"), 1);
  EXPECT_GE(Counter("messenger.gap_polls"), 1);
}

TEST_F(AppsTest, MessengerResumeTokenSkipsOldMessages) {
  auto sender = Device(bob_);
  // Three messages exist before the receiver ever connects.
  for (int i = 0; i < 3; ++i) {
    sender->SendMessage(thread_, "old" + std::to_string(i));
    cluster_->sim().RunFor(Seconds(1));
  }
  cluster_->sim().RunFor(Seconds(3));

  // Receiver connects claiming it has already seen seq 3 (initial poll).
  auto receiver = Device(alice_);
  receiver->SubscribeMailbox(3);
  cluster_->sim().RunFor(Seconds(3));
  EXPECT_EQ(receiver->payloads_received(), 0u);

  sender->SendMessage(thread_, "new");
  cluster_->sim().RunFor(Seconds(5));
  EXPECT_EQ(receiver->last_messenger_seq(), 4u);
  EXPECT_EQ(receiver->payloads_received(), 1u);
}

TEST_F(AppsTest, MessengerColdResumeAfterSubscribingLate) {
  auto sender = Device(bob_);
  sender->SendMessage(thread_, "m1");
  cluster_->sim().RunFor(Seconds(3));

  // Receiver subscribes with resume token 0 => it wants everything.
  auto receiver = Device(alice_);
  receiver->SubscribeMailbox(0);
  cluster_->sim().RunFor(Seconds(8));
  // The BRASS's catch-up poll recovers the pre-subscription message? No:
  // with token 0 the context maxSeq (=1 at resolve time) defines the
  // resume point — the device polled its mailbox before subscribing.
  EXPECT_EQ(receiver->payloads_received(), 0u);
  sender->SendMessage(thread_, "m2");
  cluster_->sim().RunFor(Seconds(5));
  EXPECT_EQ(receiver->last_messenger_seq(), 2u);
}

TEST_F(AppsTest, MessengerStaleFetchCannotWedgeTheQueue) {
  // Regression: when a gap poll recovers seq N while N's payload fetch is
  // still in flight, the late fetch completion must not re-insert N into
  // the pending queue — a stale head there blocks all later messages.
  auto receiver = Device(alice_);
  auto sender = Device(bob_);
  receiver->SubscribeMailbox(0);
  cluster_->sim().RunFor(Seconds(3));
  sender->SendMessage(thread_, "m1");
  cluster_->sim().RunFor(Seconds(5));

  // Drop m2's publish, then send m3: the m3 event triggers both a fetch of
  // m3 AND a gap poll that recovers m2+m3 (the overlap that used to wedge).
  for (size_t i = 0; i < cluster_->pylon()->NumServers(); ++i) {
    cluster_->pylon()->ServerAt(i)->SetAvailable(false);
  }
  sender->SendMessage(thread_, "m2");
  cluster_->sim().RunFor(Seconds(3));
  for (size_t i = 0; i < cluster_->pylon()->NumServers(); ++i) {
    cluster_->pylon()->ServerAt(i)->SetAvailable(true);
  }
  sender->SendMessage(thread_, "m3");
  cluster_->sim().RunFor(Seconds(10));
  EXPECT_EQ(receiver->last_messenger_seq(), 3u);

  // The queue still drains afterwards.
  sender->SendMessage(thread_, "m4");
  cluster_->sim().RunFor(Seconds(10));
  EXPECT_EQ(receiver->last_messenger_seq(), 4u);
  EXPECT_EQ(receiver->messenger_order_violations(), 0u);
}

// ---- cross-app accounting invariants ----

TEST_F(AppsTest, DecisionAccountingInvariants) {
  auto viewer = Device(alice_);
  auto poster = Device(bob_);
  viewer->SubscribeLvc(video_);
  viewer->SubscribeActiveStatus();
  cluster_->sim().RunFor(Seconds(3));
  for (int i = 0; i < 10; ++i) {
    poster->PostComment(video_, "c", "en");
    cluster_->sim().RunFor(Seconds(1));
  }
  cluster_->sim().RunFor(Seconds(15));
  // Every decision is either positive or filtered.
  EXPECT_EQ(Counter("brass.decisions"),
            Counter("brass.decisions_positive") + Counter("brass.filtered"));
  // Deliveries are actual pushes; decisions dominate them.
  EXPECT_GE(Counter("brass.decisions"), Counter("brass.deliveries"));
  EXPECT_GT(Counter("brass.deliveries"), 0);
}

}  // namespace
}  // namespace bladerunner
