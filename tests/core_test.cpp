// Tests for the core integration layer: cluster construction, device
// connectors, region preferences, device-agent behaviors not covered by
// the end-to-end suites.

#include <gtest/gtest.h>

#include <memory>

#include "src/core/cluster.h"
#include "src/core/device.h"
#include "src/trace/analysis.h"
#include "src/was/messages.h"
#include "src/was/resolvers.h"

namespace bladerunner {
namespace {

TEST(ClusterTest, BuildsConfiguredTopology) {
  ClusterConfig config;
  config.pops_per_region = 3;
  config.proxies_per_region = 2;
  config.brass_hosts_per_region = 4;
  BladerunnerCluster cluster(config);
  int regions = cluster.topology().num_regions();
  EXPECT_EQ(cluster.NumPops(), static_cast<size_t>(3 * regions));
  EXPECT_EQ(cluster.NumProxies(), static_cast<size_t>(2 * regions));
  EXPECT_EQ(cluster.NumBrassHosts(), static_cast<size_t>(4 * regions));
  ASSERT_NE(cluster.pylon(), nullptr);
  EXPECT_GT(cluster.pylon()->NumServers(), 0u);
}

TEST(ClusterTest, PollingOnlyDeploymentHasNoPylon) {
  ClusterConfig config;
  config.enable_pylon = false;
  BladerunnerCluster cluster(config, Topology::OneRegion());
  EXPECT_EQ(cluster.pylon(), nullptr);
  // Mutations still work (publishes are silently skipped).
  UserId user = CreateUser(cluster.tao(), "u", "en");
  ObjectId video = CreateVideo(cluster.tao(), user, "v");
  cluster.sim().RunFor(Seconds(1));
  DeviceAgent device(&cluster, user, 0, DeviceProfile::kWifi);
  bool ok = false;
  device.Mutate("mutation { postComment(video: " + std::to_string(video) +
                    ", text: \"t\", language: \"en\") { id } }",
                [&ok](bool success, Value) { ok = success; });
  cluster.sim().RunFor(Seconds(10));
  EXPECT_TRUE(ok);
}

TEST(ClusterTest, DeviceConnectorPrefersDeviceRegion) {
  ClusterConfig config;
  config.seed = 5;
  BladerunnerCluster cluster(config);
  for (RegionId r = 0; r < cluster.topology().num_regions(); ++r) {
    auto connector = cluster.DeviceConnector(r, DeviceProfile::kWifi);
    std::shared_ptr<ConnectionEnd> end;
    connector(1000 + r, [&end](std::shared_ptr<ConnectionEnd> e) { end = std::move(e); });
    ASSERT_NE(end, nullptr);
    // Find the POP holding the other side; it must be in region r.
    bool found = false;
    for (size_t i = 0; i < cluster.NumPops(); ++i) {
      if (cluster.pop(i).DeviceConnectionCount() > 0 && cluster.pop(i).region() == r) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << "region " << r;
  }
}

TEST(ClusterTest, DeviceConnectorFallsBackWhenRegionPopsDead) {
  ClusterConfig config;
  config.seed = 6;
  BladerunnerCluster cluster(config);
  // Kill every POP in region 0.
  for (size_t i = 0; i < cluster.NumPops(); ++i) {
    if (cluster.pop(i).region() == 0) {
      cluster.pop(i).FailPop();
    }
  }
  auto connector = cluster.DeviceConnector(0, DeviceProfile::kWifi);
  std::shared_ptr<ConnectionEnd> end;
  connector(42, [&end](std::shared_ptr<ConnectionEnd> e) { end = std::move(e); });
  ASSERT_NE(end, nullptr);  // connected through another region's POP
}

TEST(ClusterTest, RoutingPoliciesPropagateToRouter) {
  ClusterConfig config;
  config.routing_policies["TI"] = BrassRoutingPolicy::kByTopic;
  BladerunnerCluster cluster(config, Topology::OneRegion());
  // Indirect check: two streams with the same TI subscription text go to
  // the same host even when loads differ.
  UserId a = CreateUser(cluster.tao(), "a", "en");
  UserId b = CreateUser(cluster.tao(), "b", "en");
  UserId c = CreateUser(cluster.tao(), "c", "en");
  ObjectId thread = CreateThread(cluster.tao(), {a, b, c});
  cluster.sim().RunFor(Seconds(1));
  DeviceAgent da(&cluster, a, 0, DeviceProfile::kWifi);
  DeviceAgent db(&cluster, b, 0, DeviceProfile::kWifi);
  da.SubscribeTyping(thread);
  db.SubscribeTyping(thread);
  cluster.sim().RunFor(Seconds(3));
  int hosts_with_streams = 0;
  for (size_t i = 0; i < cluster.NumBrassHosts(); ++i) {
    if (cluster.brass_host(i).StreamCount() > 0) {
      ++hosts_with_streams;
    }
  }
  EXPECT_EQ(hosts_with_streams, 1);
}

class DeviceAgentTest : public ::testing::Test {
 protected:
  DeviceAgentTest() {
    ClusterConfig config;
    config.seed = 8;
    cluster_ = std::make_unique<BladerunnerCluster>(config, Topology::OneRegion());
    user_ = CreateUser(cluster_->tao(), "u", "en");
    other_ = CreateUser(cluster_->tao(), "o", "en");
    MakeFriends(cluster_->tao(), user_, other_);
    video_ = CreateVideo(cluster_->tao(), user_, "v");
    cluster_->sim().RunFor(Seconds(1));
  }
  std::unique_ptr<BladerunnerCluster> cluster_;
  UserId user_ = 0;
  UserId other_ = 0;
  ObjectId video_ = 0;
};

TEST_F(DeviceAgentTest, QueryRoundTrips) {
  DeviceAgent device(cluster_.get(), user_, 0, DeviceProfile::kWifi);
  bool done = false;
  device.Query("{ user(id: " + std::to_string(other_) + ") { name } }",
               [&done](bool ok, Value data) {
                 EXPECT_TRUE(ok);
                 EXPECT_EQ(data.Get("user").Get("name").AsString(), "o");
                 done = true;
               });
  cluster_->sim().RunFor(Seconds(5));
  EXPECT_TRUE(done);
}

TEST_F(DeviceAgentTest, HeartbeatMarksUserActive) {
  DeviceAgent device(cluster_.get(), user_, 0, DeviceProfile::kWifi);
  DeviceAgent watcher(cluster_.get(), other_, 0, DeviceProfile::kWifi);
  device.StartHeartbeat(Seconds(30));
  cluster_->sim().RunFor(Seconds(5));
  bool done = false;
  watcher.Query("{ activeFriends { id } }", [&done, this](bool ok, Value data) {
    EXPECT_TRUE(ok);
    ASSERT_EQ(data.Get("activeFriends").Size(), 1u);
    EXPECT_EQ(data.Get("activeFriends").AsList()[0].Get("id").AsInt(), user_);
    done = true;
  });
  cluster_->sim().RunFor(Seconds(5));
  EXPECT_TRUE(done);
  device.StopHeartbeat();
}

TEST_F(DeviceAgentTest, ConnectivityChurnDropsAndRecovers) {
  DeviceAgent device(cluster_.get(), user_, 0, DeviceProfile::kMobile2g);  // lowest MTBF
  device.SubscribeLvc(video_);
  device.StartConnectivityChurn();
  cluster_->sim().RunFor(Minutes(45));  // several MTBF periods
  device.StopConnectivityChurn();
  cluster_->sim().RunFor(Seconds(30));
  EXPECT_GT(cluster_->metrics().GetCounter("burst.device_connection_drops").value(), 0);
  EXPECT_TRUE(device.burst().connected());
  EXPECT_EQ(device.burst().ActiveStreamCount(), 1u);
}

TEST_F(DeviceAgentTest, ProfilesScaleRadioPromotion) {
  // 2G devices pay far more for waking the radio than wifi devices; the
  // device-observed setup latency — the "brass.subscribe" span's end
  // relative to its subscribe trace's root — reflects it.
  SpanQuery query;
  query.name = "brass.subscribe";
  DeviceAgent wifi(cluster_.get(), user_, 0, DeviceProfile::kWifi);
  wifi.SubscribeLvc(video_);
  cluster_->sim().RunFor(Seconds(10));
  double wifi_setup = SpanEndSinceRootHistogram(cluster_->trace(), query).Mean();
  cluster_->trace().Clear();
  DeviceAgent slow(cluster_.get(), other_, 0, DeviceProfile::kMobile2g);
  slow.SubscribeLvc(video_);
  cluster_->sim().RunFor(Seconds(20));
  double slow_setup = SpanEndSinceRootHistogram(cluster_->trace(), query).Mean();
  EXPECT_GT(slow_setup, wifi_setup * 2.0);
}

}  // namespace
}  // namespace bladerunner
