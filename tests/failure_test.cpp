// Failure-injection stress tests: the §4 machinery under sustained and
// combined failures — rolling host drains with traffic in flight, KV-node
// flapping, WAS outages, connectivity storms, and cascades.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/cluster.h"
#include "src/core/device.h"
#include "src/was/resolvers.h"
#include "src/workload/social_gen.h"

namespace bladerunner {
namespace {

class FailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.seed = 5150;
    config.brass_hosts_per_region = 3;
    cluster_ = std::make_unique<BladerunnerCluster>(config);
    SocialGraphConfig graph_config;
    graph_config.num_users = 50;
    graph_config.num_videos = 2;
    graph_config.num_threads = 10;
    graph_ = GenerateSocialGraph(cluster_->tao(), cluster_->sim().rng(), graph_config);
    cluster_->sim().RunFor(Seconds(2));
  }

  size_t TotalHostStreams() {
    size_t n = 0;
    for (size_t i = 0; i < cluster_->NumBrassHosts(); ++i) {
      n += cluster_->brass_host(i).StreamCount();
    }
    return n;
  }

  std::unique_ptr<BladerunnerCluster> cluster_;
  SocialGraph graph_;
};

// Regression for the drain-during-fanout use-after-free: hosts drain and
// revive continuously while publishes are in flight.
TEST_F(FailureTest, RollingDrainsWithTrafficInFlight) {
  std::vector<std::unique_ptr<DeviceAgent>> viewers;
  for (int i = 0; i < 12; ++i) {
    viewers.push_back(std::make_unique<DeviceAgent>(
        cluster_.get(), graph_.users[static_cast<size_t>(i)], 0, DeviceProfile::kWifi));
    viewers.back()->SubscribeLvc(graph_.videos[0]);
  }
  DeviceAgent poster(cluster_.get(), graph_.users[20], 0, DeviceProfile::kWifi);
  cluster_->sim().RunFor(Seconds(4));

  size_t victim = 0;
  for (int round = 0; round < 30; ++round) {
    poster.PostComment(graph_.videos[0], "c", "en");
    // Drain a host right as publishes are mid-pipeline, revive another.
    if (round % 2 == 0) {
      cluster_->brass_host(victim % cluster_->NumBrassHosts()).Drain();
      cluster_->sim().Schedule(Seconds(3), [this, victim]() {
        cluster_->brass_host(victim % cluster_->NumBrassHosts()).Revive();
      });
      ++victim;
    }
    cluster_->sim().RunFor(Millis(700));
  }
  cluster_->sim().RunFor(Seconds(30));

  // The system survived and streams were repaired onto live hosts.
  EXPECT_GE(cluster_->metrics().GetCounter("burst.proxy_induced_reconnects").value(), 10);
  EXPECT_GE(TotalHostStreams(), viewers.size() - 2);
  for (auto& viewer : viewers) {
    EXPECT_TRUE(viewer->burst().connected());
  }
}

TEST_F(FailureTest, KvNodeFlappingDoesNotCorruptSubscriptions) {
  DeviceAgent viewer(cluster_.get(), graph_.users[0], 0, DeviceProfile::kWifi);
  DeviceAgent poster(cluster_.get(), graph_.users[1], 0, DeviceProfile::kWifi);
  viewer.SubscribeLvc(graph_.videos[0]);
  cluster_->sim().RunFor(Seconds(3));

  // Flap one KV node repeatedly while publishes flow.
  for (int round = 0; round < 10; ++round) {
    cluster_->pylon()->KvNodeAt(static_cast<size_t>(round) % cluster_->pylon()->NumKvNodes())
        ->SetAvailable(round % 2 == 0);
    poster.PostComment(graph_.videos[0], "c", "en");
    cluster_->sim().RunFor(Seconds(3));
  }
  for (size_t i = 0; i < cluster_->pylon()->NumKvNodes(); ++i) {
    cluster_->pylon()->KvNodeAt(i)->SetAvailable(true);
  }
  cluster_->sim().RunFor(Seconds(10));

  // Publishing still reaches the viewer afterwards.
  uint64_t before = viewer.payloads_received();
  for (int i = 0; i < 6; ++i) {
    poster.PostComment(graph_.videos[0], "after", "en");
    cluster_->sim().RunFor(Seconds(2));
  }
  cluster_->sim().RunFor(Seconds(15));
  EXPECT_GT(viewer.payloads_received(), before);
}

TEST_F(FailureTest, WasOutageDuringFetchIsSurvivable) {
  DeviceAgent viewer(cluster_.get(), graph_.users[0], 0, DeviceProfile::kWifi);
  DeviceAgent poster(cluster_.get(), graph_.users[1], 0, DeviceProfile::kWifi);
  MakeFriends(cluster_->tao(), viewer.user(), poster.user());
  cluster_->sim().RunFor(Seconds(1));
  viewer.SubscribeLvc(graph_.videos[0]);
  cluster_->sim().RunFor(Seconds(3));

  // Take every WAS down right after a burst of comments: payload fetches
  // time out, deliveries are lost, nothing crashes, and the stream lives.
  const std::string& lang = graph_.language[viewer.user()];
  for (int i = 0; i < 5; ++i) {
    poster.PostComment(graph_.videos[0], "pre-outage", lang);
  }
  cluster_->sim().RunFor(Seconds(3));
  for (RegionId r = 0; r < cluster_->topology().num_regions(); ++r) {
    cluster_->was(r).rpc()->SetAvailable(false);
  }
  cluster_->sim().RunFor(Seconds(15));
  for (RegionId r = 0; r < cluster_->topology().num_regions(); ++r) {
    cluster_->was(r).rpc()->SetAvailable(true);
  }
  cluster_->sim().RunFor(Seconds(5));

  uint64_t before = viewer.payloads_received();
  for (int i = 0; i < 8; ++i) {
    poster.PostComment(graph_.videos[0], "post-outage", lang);
    cluster_->sim().RunFor(Seconds(2));
  }
  cluster_->sim().RunFor(Seconds(15));
  EXPECT_GT(viewer.payloads_received(), before);
}

TEST_F(FailureTest, ConnectivityStormAllDevicesRecover) {
  std::vector<std::unique_ptr<DeviceAgent>> devices;
  for (int i = 0; i < 15; ++i) {
    devices.push_back(std::make_unique<DeviceAgent>(
        cluster_.get(), graph_.users[static_cast<size_t>(i)], 0, DeviceProfile::kMobile4g));
    devices.back()->SubscribeLvc(graph_.videos[0]);
  }
  cluster_->sim().RunFor(Seconds(4));

  // Everyone drops at once (cell tower hiccup), twice in a row.
  for (int storm = 0; storm < 2; ++storm) {
    for (auto& device : devices) {
      device->burst().SimulateConnectionDrop();
    }
    cluster_->sim().RunFor(Seconds(6));
  }
  for (auto& device : devices) {
    EXPECT_TRUE(device->burst().connected());
    EXPECT_EQ(device->burst().ActiveStreamCount(), 1u);
  }
  // Sticky routing meant the server-side stream state was reused.
  EXPECT_GE(cluster_->metrics().GetCounter("burst.server_stream_resumes").value(), 15);
}

TEST_F(FailureTest, CascadePopThenProxyThenHost) {
  ObjectId thread = graph_.threads[0];
  const auto& members = graph_.thread_members[thread];
  DeviceAgent receiver(cluster_.get(), members[0], 0, DeviceProfile::kWifi);
  DeviceAgent sender(cluster_.get(), members[1], 0, DeviceProfile::kWifi);
  receiver.SubscribeMailbox(0);
  cluster_->sim().RunFor(Seconds(3));
  sender.SendMessage(thread, "m1");
  cluster_->sim().RunFor(Seconds(4));
  ASSERT_EQ(receiver.last_messenger_seq(), 1u);

  // One infrastructure layer fails every few seconds.
  for (size_t i = 0; i < cluster_->NumPops(); ++i) {
    if (cluster_->pop(i).DeviceConnectionCount() > 0) {
      cluster_->pop(i).FailPop();
      break;
    }
  }
  cluster_->sim().RunFor(Seconds(6));
  for (size_t i = 0; i < cluster_->NumProxies(); ++i) {
    if (cluster_->proxy(i).StreamCount() > 0) {
      cluster_->proxy(i).FailProxy();
      break;
    }
  }
  cluster_->sim().RunFor(Seconds(6));
  for (size_t i = 0; i < cluster_->NumBrassHosts(); ++i) {
    if (cluster_->brass_host(i).StreamCount() > 0) {
      cluster_->brass_host(i).FailHost();
      break;
    }
  }
  cluster_->sim().RunFor(Seconds(8));

  sender.SendMessage(thread, "m2");
  sender.SendMessage(thread, "m3");
  cluster_->sim().RunFor(Seconds(15));
  EXPECT_EQ(receiver.last_messenger_seq(), 3u);
  EXPECT_EQ(receiver.messenger_order_violations(), 0u);
}

TEST_F(FailureTest, DetachedStreamGcInformsApplication) {
  DeviceAgent viewer(cluster_.get(), graph_.users[0], 0, DeviceProfile::kWifi);
  viewer.SubscribeLvc(graph_.videos[0]);
  cluster_->sim().RunFor(Seconds(3));
  ASSERT_EQ(TotalHostStreams(), 1u);

  // Device vanishes for good (no reconnect): the server keeps the stream
  // for the grace period, then GCs it and unsubscribes the topic.
  viewer.burst().SetAutoReconnect(false);
  viewer.burst().SimulateConnectionDrop();
  cluster_->sim().RunFor(cluster_->config().burst.server_stream_keep_timeout + Seconds(5));
  EXPECT_EQ(TotalHostStreams(), 0u);
  size_t subscriptions = 0;
  for (size_t i = 0; i < cluster_->NumBrassHosts(); ++i) {
    subscriptions += cluster_->brass_host(i).PylonSubscriptionCount();
  }
  EXPECT_EQ(subscriptions, 0u);
}

TEST_F(FailureTest, RepeatedRedirectsKeepExactlyOneServerStream) {
  DeviceAgent viewer(cluster_.get(), graph_.users[0], 0, DeviceProfile::kWifi);
  viewer.SubscribeLvc(graph_.videos[0]);
  cluster_->sim().RunFor(Seconds(3));

  for (int round = 0; round < 4; ++round) {
    // Find the serving host and redirect its stream to the next host.
    for (size_t i = 0; i < cluster_->NumBrassHosts(); ++i) {
      BrassHost& host = cluster_->brass_host(i);
      if (host.StreamCount() == 0) {
        continue;
      }
      int64_t target = cluster_->brass_host((i + 1) % cluster_->NumBrassHosts()).host_id();
      // Issue the §3.5 redirect: rewrite routing info, then terminate.
      std::vector<StreamRecord> open = host.OpenStreamRecords();
      ASSERT_FALSE(open.empty());
      ServerStream* stream = host.burst()->FindStream(open[0].key);
      ASSERT_NE(stream, nullptr);
      Value header = stream->header();
      header.Set(kHeaderBrassHost, target);
      stream->Rewrite(header);
      stream->Terminate(TerminateReason::kRedirect, "load rebalancing");
      break;
    }
    cluster_->sim().RunFor(Seconds(4));
    EXPECT_EQ(TotalHostStreams(), 1u) << "round " << round;
    EXPECT_EQ(viewer.burst().ActiveStreamCount(), 1u);
  }
  EXPECT_GE(cluster_->metrics().GetCounter("burst.client_redirects").value(), 4);
}

}  // namespace
}  // namespace bladerunner
