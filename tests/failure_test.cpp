// Failure-injection stress tests: the §4 machinery under sustained and
// combined failures — rolling host drains with traffic in flight, KV-node
// flapping, WAS outages, connectivity storms, and cascades.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/cluster.h"
#include "src/core/device.h"
#include "src/pylon/failure_injector.h"
#include "src/was/resolvers.h"
#include "src/workload/social_gen.h"

namespace bladerunner {
namespace {

class FailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.seed = 5150;
    config.brass_hosts_per_region = 3;
    cluster_ = std::make_unique<BladerunnerCluster>(config);
    SocialGraphConfig graph_config;
    graph_config.num_users = 50;
    graph_config.num_videos = 2;
    graph_config.num_threads = 10;
    graph_ = GenerateSocialGraph(cluster_->tao(), cluster_->sim().rng(), graph_config);
    cluster_->sim().RunFor(Seconds(2));
  }

  size_t TotalHostStreams() {
    size_t n = 0;
    for (size_t i = 0; i < cluster_->NumBrassHosts(); ++i) {
      n += cluster_->brass_host(i).StreamCount();
    }
    return n;
  }

  std::unique_ptr<BladerunnerCluster> cluster_;
  SocialGraph graph_;
};

// Regression for the drain-during-fanout use-after-free: hosts drain and
// revive continuously while publishes are in flight.
TEST_F(FailureTest, RollingDrainsWithTrafficInFlight) {
  std::vector<std::unique_ptr<DeviceAgent>> viewers;
  for (int i = 0; i < 12; ++i) {
    viewers.push_back(std::make_unique<DeviceAgent>(
        cluster_.get(), graph_.users[static_cast<size_t>(i)], 0, DeviceProfile::kWifi));
    viewers.back()->SubscribeLvc(graph_.videos[0]);
  }
  DeviceAgent poster(cluster_.get(), graph_.users[20], 0, DeviceProfile::kWifi);
  cluster_->sim().RunFor(Seconds(4));

  size_t victim = 0;
  for (int round = 0; round < 30; ++round) {
    poster.PostComment(graph_.videos[0], "c", "en");
    // Drain a host right as publishes are mid-pipeline, revive another.
    if (round % 2 == 0) {
      cluster_->brass_host(victim % cluster_->NumBrassHosts()).Drain();
      cluster_->sim().Schedule(Seconds(3), [this, victim]() {
        cluster_->brass_host(victim % cluster_->NumBrassHosts()).Revive();
      });
      ++victim;
    }
    cluster_->sim().RunFor(Millis(700));
  }
  cluster_->sim().RunFor(Seconds(30));

  // The system survived and streams were repaired onto live hosts.
  EXPECT_GE(cluster_->metrics().GetCounter("burst.proxy_induced_reconnects").value(), 10);
  EXPECT_GE(TotalHostStreams(), viewers.size() - 2);
  for (auto& viewer : viewers) {
    EXPECT_TRUE(viewer->burst().connected());
  }
}

TEST_F(FailureTest, KvNodeFlappingDoesNotCorruptSubscriptions) {
  DeviceAgent viewer(cluster_.get(), graph_.users[0], 0, DeviceProfile::kWifi);
  DeviceAgent poster(cluster_.get(), graph_.users[1], 0, DeviceProfile::kWifi);
  viewer.SubscribeLvc(graph_.videos[0]);
  cluster_->sim().RunFor(Seconds(3));

  // Flap one KV node repeatedly while publishes flow.
  for (int round = 0; round < 10; ++round) {
    cluster_->pylon()->KvNodeAt(static_cast<size_t>(round) % cluster_->pylon()->NumKvNodes())
        ->SetAvailable(round % 2 == 0);
    poster.PostComment(graph_.videos[0], "c", "en");
    cluster_->sim().RunFor(Seconds(3));
  }
  for (size_t i = 0; i < cluster_->pylon()->NumKvNodes(); ++i) {
    cluster_->pylon()->KvNodeAt(i)->SetAvailable(true);
  }
  cluster_->sim().RunFor(Seconds(10));

  // Publishing still reaches the viewer afterwards.
  uint64_t before = viewer.payloads_received();
  for (int i = 0; i < 6; ++i) {
    poster.PostComment(graph_.videos[0], "after", "en");
    cluster_->sim().RunFor(Seconds(2));
  }
  cluster_->sim().RunFor(Seconds(15));
  EXPECT_GT(viewer.payloads_received(), before);
}

TEST_F(FailureTest, WasOutageDuringFetchIsSurvivable) {
  DeviceAgent viewer(cluster_.get(), graph_.users[0], 0, DeviceProfile::kWifi);
  DeviceAgent poster(cluster_.get(), graph_.users[1], 0, DeviceProfile::kWifi);
  MakeFriends(cluster_->tao(), viewer.user(), poster.user());
  cluster_->sim().RunFor(Seconds(1));
  viewer.SubscribeLvc(graph_.videos[0]);
  cluster_->sim().RunFor(Seconds(3));

  // Take every WAS down right after a burst of comments: payload fetches
  // time out, deliveries are lost, nothing crashes, and the stream lives.
  const std::string& lang = graph_.language[viewer.user()];
  for (int i = 0; i < 5; ++i) {
    poster.PostComment(graph_.videos[0], "pre-outage", lang);
  }
  cluster_->sim().RunFor(Seconds(3));
  for (RegionId r = 0; r < cluster_->topology().num_regions(); ++r) {
    cluster_->was(r).rpc()->SetAvailable(false);
  }
  cluster_->sim().RunFor(Seconds(15));
  for (RegionId r = 0; r < cluster_->topology().num_regions(); ++r) {
    cluster_->was(r).rpc()->SetAvailable(true);
  }
  cluster_->sim().RunFor(Seconds(5));

  uint64_t before = viewer.payloads_received();
  for (int i = 0; i < 8; ++i) {
    poster.PostComment(graph_.videos[0], "post-outage", lang);
    cluster_->sim().RunFor(Seconds(2));
  }
  cluster_->sim().RunFor(Seconds(15));
  EXPECT_GT(viewer.payloads_received(), before);
}

TEST_F(FailureTest, ConnectivityStormAllDevicesRecover) {
  std::vector<std::unique_ptr<DeviceAgent>> devices;
  for (int i = 0; i < 15; ++i) {
    devices.push_back(std::make_unique<DeviceAgent>(
        cluster_.get(), graph_.users[static_cast<size_t>(i)], 0, DeviceProfile::kMobile4g));
    devices.back()->SubscribeLvc(graph_.videos[0]);
  }
  cluster_->sim().RunFor(Seconds(4));

  // Everyone drops at once (cell tower hiccup), twice in a row.
  for (int storm = 0; storm < 2; ++storm) {
    for (auto& device : devices) {
      device->burst().SimulateConnectionDrop();
    }
    cluster_->sim().RunFor(Seconds(6));
  }
  for (auto& device : devices) {
    EXPECT_TRUE(device->burst().connected());
    EXPECT_EQ(device->burst().ActiveStreamCount(), 1u);
  }
  // Sticky routing meant the server-side stream state was reused.
  EXPECT_GE(cluster_->metrics().GetCounter("burst.server_stream_resumes").value(), 15);
}

TEST_F(FailureTest, CascadePopThenProxyThenHost) {
  ObjectId thread = graph_.threads[0];
  const auto& members = graph_.thread_members[thread];
  DeviceAgent receiver(cluster_.get(), members[0], 0, DeviceProfile::kWifi);
  DeviceAgent sender(cluster_.get(), members[1], 0, DeviceProfile::kWifi);
  receiver.SubscribeMailbox(0);
  cluster_->sim().RunFor(Seconds(3));
  sender.SendMessage(thread, "m1");
  cluster_->sim().RunFor(Seconds(4));
  ASSERT_EQ(receiver.last_messenger_seq(), 1u);

  // One infrastructure layer fails every few seconds.
  for (size_t i = 0; i < cluster_->NumPops(); ++i) {
    if (cluster_->pop(i).DeviceConnectionCount() > 0) {
      cluster_->pop(i).FailPop();
      break;
    }
  }
  cluster_->sim().RunFor(Seconds(6));
  for (size_t i = 0; i < cluster_->NumProxies(); ++i) {
    if (cluster_->proxy(i).StreamCount() > 0) {
      cluster_->proxy(i).FailProxy();
      break;
    }
  }
  cluster_->sim().RunFor(Seconds(6));
  for (size_t i = 0; i < cluster_->NumBrassHosts(); ++i) {
    if (cluster_->brass_host(i).StreamCount() > 0) {
      cluster_->brass_host(i).FailHost();
      break;
    }
  }
  cluster_->sim().RunFor(Seconds(8));

  sender.SendMessage(thread, "m2");
  sender.SendMessage(thread, "m3");
  cluster_->sim().RunFor(Seconds(15));
  EXPECT_EQ(receiver.last_messenger_seq(), 3u);
  EXPECT_EQ(receiver.messenger_order_violations(), 0u);
}

TEST_F(FailureTest, DetachedStreamGcInformsApplication) {
  DeviceAgent viewer(cluster_.get(), graph_.users[0], 0, DeviceProfile::kWifi);
  viewer.SubscribeLvc(graph_.videos[0]);
  cluster_->sim().RunFor(Seconds(3));
  ASSERT_EQ(TotalHostStreams(), 1u);

  // Device vanishes for good (no reconnect): the server keeps the stream
  // for the grace period, then GCs it and unsubscribes the topic.
  viewer.burst().SetAutoReconnect(false);
  viewer.burst().SimulateConnectionDrop();
  cluster_->sim().RunFor(cluster_->config().burst.server_stream_keep_timeout + Seconds(5));
  EXPECT_EQ(TotalHostStreams(), 0u);
  size_t subscriptions = 0;
  for (size_t i = 0; i < cluster_->NumBrassHosts(); ++i) {
    subscriptions += cluster_->brass_host(i).PylonSubscriptionCount();
  }
  EXPECT_EQ(subscriptions, 0u);
}

TEST_F(FailureTest, RepeatedRedirectsKeepExactlyOneServerStream) {
  DeviceAgent viewer(cluster_.get(), graph_.users[0], 0, DeviceProfile::kWifi);
  viewer.SubscribeLvc(graph_.videos[0]);
  cluster_->sim().RunFor(Seconds(3));

  for (int round = 0; round < 4; ++round) {
    // Find the serving host and redirect its stream to the next host.
    for (size_t i = 0; i < cluster_->NumBrassHosts(); ++i) {
      BrassHost& host = cluster_->brass_host(i);
      if (host.StreamCount() == 0) {
        continue;
      }
      int64_t target = cluster_->brass_host((i + 1) % cluster_->NumBrassHosts()).host_id();
      // Issue the §3.5 redirect: rewrite routing info, then terminate.
      std::vector<StreamRecord> open = host.OpenStreamRecords();
      ASSERT_FALSE(open.empty());
      ServerStream* stream = host.burst()->FindStream(open[0].key);
      ASSERT_NE(stream, nullptr);
      StreamHeader header(stream->header());
      header.set_brass_host(target);
      stream->Rewrite(std::move(header).Take());
      stream->Terminate(TerminateReason::kRedirect, "load rebalancing");
      break;
    }
    cluster_->sim().RunFor(Seconds(4));
    EXPECT_EQ(TotalHostStreams(), 1u) << "round " << round;
    EXPECT_EQ(viewer.burst().ActiveStreamCount(), 1u);
  }
  EXPECT_GE(cluster_->metrics().GetCounter("burst.client_redirects").value(), 4);
}

// Tentpole regression: crash every subscriber-KV node in turn — full state
// loss on each recovery — while publishes flow. Replica re-ranking keeps a
// write quorum up throughout (one node down out of nine), anti-entropy
// rebuilds each wiped table, and no subscription is permanently lost.
TEST_F(FailureTest, KvCrashRecoverReConvergeCampaign) {
  std::vector<std::unique_ptr<DeviceAgent>> viewers;
  for (int i = 0; i < 8; ++i) {
    viewers.push_back(std::make_unique<DeviceAgent>(
        cluster_.get(), graph_.users[static_cast<size_t>(i)], 0, DeviceProfile::kWifi));
    viewers.back()->SubscribeLvc(graph_.videos[i % 2]);
  }
  DeviceAgent poster(cluster_.get(), graph_.users[20], 0, DeviceProfile::kWifi);
  cluster_->sim().RunFor(Seconds(4));

  for (size_t i = 0; i < cluster_->pylon()->NumKvNodes(); ++i) {
    KvNode* node = cluster_->pylon()->KvNodeAt(i);
    node->Fail();
    poster.PostComment(graph_.videos[0], "during-outage", "en");
    cluster_->sim().RunFor(Seconds(4));
    node->Recover(/*lose_state=*/true);
    cluster_->sim().RunFor(Seconds(6));
    EXPECT_EQ(node->lifecycle(), KvNodeState::kLive) << "node " << i;
  }
  EXPECT_GE(cluster_->metrics().GetCounter("pylon.kv_anti_entropy_runs").value(),
            static_cast<int64_t>(cluster_->pylon()->NumKvNodes()));

  // Durability: every subscription a live BRASS host believes it holds is
  // present on at least one *current* replica of the topic.
  size_t audited = 0;
  for (size_t h = 0; h < cluster_->NumBrassHosts(); ++h) {
    BrassHost& host = cluster_->brass_host(h);
    if (!host.alive()) {
      continue;
    }
    for (const Topic& topic : host.PylonSubscribedTopics()) {
      ++audited;
      RegionId home = cluster_->pylon()->RouteServer(topic)->region();
      bool present = false;
      for (KvNode* node : cluster_->pylon()->ReplicasFor(topic, home)) {
        const std::set<int64_t>* subs = node->Find(topic);
        present |= subs != nullptr && subs->count(host.host_id()) > 0;
      }
      EXPECT_TRUE(present) << "subscription permanently lost: " << topic;
    }
  }
  EXPECT_GT(audited, 0u);

  // Publishes still fan out to the viewers afterwards.
  uint64_t before = 0;
  for (auto& viewer : viewers) {
    before += viewer->payloads_received();
  }
  for (int i = 0; i < 5; ++i) {
    poster.PostComment(graph_.videos[0], "after-recovery", "en");
    cluster_->sim().RunFor(Seconds(2));
  }
  cluster_->sim().RunFor(Seconds(15));
  uint64_t after = 0;
  for (auto& viewer : viewers) {
    after += viewer->payloads_received();
  }
  EXPECT_GT(after, before);
}

// Runs a compressed seeded KV-outage campaign against a fresh cluster and
// returns a fingerprint of everything observable: the injected schedule,
// per-viewer deliveries, and the Pylon failure/recovery counters.
std::vector<int64_t> RunSeededCampaign(uint64_t injector_seed) {
  ClusterConfig config;
  config.seed = 5150;
  config.brass_hosts_per_region = 3;
  BladerunnerCluster cluster(config);
  SocialGraphConfig graph_config;
  graph_config.num_users = 30;
  graph_config.num_videos = 2;
  graph_config.num_threads = 5;
  SocialGraph graph = GenerateSocialGraph(cluster.tao(), cluster.sim().rng(), graph_config);
  cluster.sim().RunFor(Seconds(2));

  std::vector<std::unique_ptr<DeviceAgent>> viewers;
  for (int i = 0; i < 5; ++i) {
    viewers.push_back(std::make_unique<DeviceAgent>(
        &cluster, graph.users[static_cast<size_t>(i)], 0, DeviceProfile::kWifi));
    viewers.back()->SubscribeLvc(graph.videos[0]);
  }
  DeviceAgent poster(&cluster, graph.users[10], 0, DeviceProfile::kWifi);
  cluster.sim().RunFor(Seconds(3));

  KvFailureInjectorConfig injector_config;
  injector_config.seed = injector_seed;
  injector_config.mean_time_between_failures = Seconds(25);
  injector_config.mean_outage = Seconds(6);
  injector_config.min_outage = Seconds(2);
  injector_config.state_loss_probability = 0.7;
  injector_config.correlated_failure_probability = 0.3;
  injector_config.duration = Minutes(2);
  KvFailureInjector injector(cluster.pylon(), injector_config);
  injector.Start();

  for (int p = 0; p < 24; ++p) {
    poster.PostComment(graph.videos[0], "c", "en");
    cluster.sim().RunFor(Seconds(5));
  }
  cluster.sim().RunFor(Seconds(30));

  std::vector<int64_t> fingerprint;
  for (const KvFailureInjector::Outage& outage : injector.outages()) {
    fingerprint.push_back(static_cast<int64_t>(outage.node_index));
    fingerprint.push_back(outage.at);
    fingerprint.push_back(outage.duration);
    fingerprint.push_back(outage.state_loss ? 1 : 0);
  }
  for (auto& viewer : viewers) {
    fingerprint.push_back(static_cast<int64_t>(viewer->payloads_received()));
  }
  for (const char* counter :
       {"pylon.kv_node_failures", "pylon.kv_node_recoveries", "pylon.kv_anti_entropy_runs",
        "pylon.kv_anti_entropy_entries_merged", "pylon.quorum_failures",
        "pylon.kv_read_failures", "pylon.publishes"}) {
    fingerprint.push_back(cluster.metrics().GetCounter(counter).value());
  }
  return fingerprint;
}

// Identical seeds -> identical campaigns and identical outcomes, down to
// every delivery count and failure counter; a different injector seed
// produces a different campaign.
TEST(KvFailureInjectorTest, CampaignIsDeterministicAcrossIdenticalSeeds) {
  std::vector<int64_t> first = RunSeededCampaign(99);
  std::vector<int64_t> second = RunSeededCampaign(99);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  std::vector<int64_t> other = RunSeededCampaign(100);
  EXPECT_NE(first, other);
}

}  // namespace
}  // namespace bladerunner
