// Unit tests for the workload models: Table 1 popularity shape, Table 2
// lifetime shape, diurnal curve, social-graph generation.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/metrics.h"
#include "src/workload/diurnal.h"
#include "src/workload/lifetimes.h"
#include "src/workload/popularity.h"
#include "src/workload/social_gen.h"

namespace bladerunner {
namespace {

TEST(PopularityTest, BucketClassification) {
  EXPECT_EQ(AreaPopularityModel::BucketOf(0), 0u);
  EXPECT_EQ(AreaPopularityModel::BucketOf(5), 1u);
  EXPECT_EQ(AreaPopularityModel::BucketOf(42), 2u);
  EXPECT_EQ(AreaPopularityModel::BucketOf(500000), 3u);
  EXPECT_EQ(AreaPopularityModel::BucketOf(2000000), 4u);
  EXPECT_EQ(AreaPopularityModel::BucketOf(200000000), 5u);
  EXPECT_EQ(AreaPopularityModel::BucketLabels().size(), 6u);
}

TEST(PopularityTest, SampledDistributionMatchesTable1Shape) {
  Rng rng(5);
  AreaPopularityModel model;
  const int n = 200000;
  std::vector<int> buckets(6, 0);
  for (int i = 0; i < n; ++i) {
    buckets[AreaPopularityModel::BucketOf(model.SampleDailyUpdates(rng))] += 1;
  }
  // Table 1: 83% zero, 16% <10, ~1% <100, ~0.05% beyond 1M.
  EXPECT_NEAR(static_cast<double>(buckets[0]) / n, 0.83, 0.01);
  EXPECT_NEAR(static_cast<double>(buckets[1]) / n, 0.16, 0.01);
  EXPECT_NEAR(static_cast<double>(buckets[2]) / n, 0.0095, 0.003);
  // Table 1 has no 100..1M bucket: the tail jumps straight to >1M.
  EXPECT_EQ(buckets[3], 0);
  EXPECT_NEAR(static_cast<double>(buckets[4] + buckets[5]) / n, 0.0005, 0.0004);
}

TEST(PopularityTest, ZipfPickerConcentratesTraffic) {
  Rng rng(6);
  ZipfTopicPicker picker(1000, 1.05);
  std::vector<int> hits(1000, 0);
  for (int i = 0; i < 100000; ++i) {
    hits[static_cast<size_t>(picker.Pick(rng))] += 1;
  }
  // Top area gets orders of magnitude more than the median area.
  EXPECT_GT(hits[0], hits[500] * 50);
}

TEST(LifetimeTest, BucketClassification) {
  EXPECT_EQ(StreamLifetimeModel::BucketOf(Minutes(5)), 0u);
  EXPECT_EQ(StreamLifetimeModel::BucketOf(Minutes(30)), 1u);
  EXPECT_EQ(StreamLifetimeModel::BucketOf(Hours(5)), 2u);
  EXPECT_EQ(StreamLifetimeModel::BucketOf(Hours(30)), 3u);
}

TEST(LifetimeTest, SampledDistributionMatchesTable2) {
  Rng rng(7);
  StreamLifetimeModel model;
  const int n = 100000;
  std::vector<int> buckets(4, 0);
  for (int i = 0; i < n; ++i) {
    buckets[StreamLifetimeModel::BucketOf(model.Sample(rng))] += 1;
  }
  EXPECT_NEAR(static_cast<double>(buckets[0]) / n, 0.45, 0.01);
  EXPECT_NEAR(static_cast<double>(buckets[1]) / n, 0.26, 0.01);
  EXPECT_NEAR(static_cast<double>(buckets[2]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(buckets[3]) / n, 0.04, 0.01);
}

TEST(DiurnalTest, PeakAndTrough) {
  DiurnalCurve curve(0.5, 1.0, 16.0);
  EXPECT_NEAR(curve.At(Hours(16)), 1.0, 1e-9);
  EXPECT_NEAR(curve.At(Hours(4)), 0.5, 1e-9);  // 12h away from peak
  // Same time next day gives the same multiplier.
  EXPECT_NEAR(curve.At(Hours(16)), curve.At(Hours(40)), 1e-9);
}

TEST(DiurnalTest, AlwaysWithinBand) {
  DiurnalCurve curve = DiurnalCurve::PaperActivity();
  for (int m = 0; m < 24 * 60; m += 7) {
    double v = curve.At(Minutes(m));
    EXPECT_GE(v, 0.55 - 1e-9);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
}

class SocialGenTest : public ::testing::Test {
 protected:
  SocialGenTest() : topology_(Topology::OneRegion()), sim_(9) {
    tao_ = std::make_unique<TaoStore>(&sim_, &topology_, TaoConfig{}, &metrics_);
  }
  Topology topology_;
  Simulator sim_;
  MetricsRegistry metrics_;
  std::unique_ptr<TaoStore> tao_;
};

TEST_F(SocialGenTest, GeneratesRequestedCounts) {
  SocialGraphConfig config;
  config.num_users = 100;
  config.num_videos = 3;
  config.num_threads = 10;
  SocialGraph graph = GenerateSocialGraph(*tao_, sim_.rng(), config);
  EXPECT_EQ(graph.users.size(), 100u);
  EXPECT_EQ(graph.videos.size(), 3u);
  EXPECT_EQ(graph.threads.size(), 10u);
}

TEST_F(SocialGenTest, FriendshipsAreSymmetric) {
  SocialGraphConfig config;
  config.num_users = 50;
  SocialGraph graph = GenerateSocialGraph(*tao_, sim_.rng(), config);
  for (UserId user : graph.users) {
    for (UserId f : graph.FriendsOf(user)) {
      const auto& back = graph.FriendsOf(f);
      EXPECT_NE(std::find(back.begin(), back.end(), user), back.end());
    }
  }
}

TEST_F(SocialGenTest, FriendshipsAreInTao) {
  SocialGraphConfig config;
  config.num_users = 30;
  SocialGraph graph = GenerateSocialGraph(*tao_, sim_.rng(), config);
  sim_.RunFor(Seconds(1));
  for (UserId user : graph.users) {
    QueryCost cost;
    auto assocs = tao_->AssocRange(0, user, AssocType::kFriend, kBeginningOfTime, kSimTimeNever,
                                   1000, &cost);
    EXPECT_EQ(assocs.size(), graph.FriendsOf(user).size());
  }
}

TEST_F(SocialGenTest, MeanDegreeRoughlyMatchesConfig) {
  SocialGraphConfig config;
  config.num_users = 400;
  config.mean_friends = 12.0;
  SocialGraph graph = GenerateSocialGraph(*tao_, sim_.rng(), config);
  double total = 0.0;
  for (UserId user : graph.users) {
    total += static_cast<double>(graph.FriendsOf(user).size());
  }
  EXPECT_NEAR(total / static_cast<double>(graph.users.size()), 12.0, 2.5);
}

TEST_F(SocialGenTest, ThreadMembersRecorded) {
  SocialGraphConfig config;
  config.num_users = 30;
  config.num_threads = 5;
  SocialGraph graph = GenerateSocialGraph(*tao_, sim_.rng(), config);
  for (ObjectId thread : graph.threads) {
    const auto& members = graph.thread_members.at(thread);
    EXPECT_GE(members.size(), static_cast<size_t>(config.thread_size_min));
    EXPECT_LE(members.size(), static_cast<size_t>(config.thread_size_max));
    QueryCost cost;
    auto obj = tao_->GetObject(0, thread, &cost);
    ASSERT_TRUE(obj.has_value());
    EXPECT_EQ(obj->data.Get("members").Size(), members.size());
  }
}

TEST_F(SocialGenTest, LanguagesAssigned) {
  SocialGraphConfig config;
  config.num_users = 50;
  SocialGraph graph = GenerateSocialGraph(*tao_, sim_.rng(), config);
  for (UserId user : graph.users) {
    EXPECT_FALSE(graph.language.at(user).empty());
  }
}

}  // namespace
}  // namespace bladerunner
