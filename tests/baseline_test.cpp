// Tests for the polling baselines (§2) and the core poll-vs-push contrasts
// the paper's evaluation rests on.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/baseline/polling.h"
#include "src/core/cluster.h"
#include "src/core/device.h"
#include "src/was/resolvers.h"

namespace bladerunner {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.seed = 909;
    cluster_ = std::make_unique<BladerunnerCluster>(config, Topology::OneRegion());
    alice_ = CreateUser(cluster_->tao(), "alice", "en");
    bob_ = CreateUser(cluster_->tao(), "bob", "en");
    MakeFriends(cluster_->tao(), alice_, bob_);
    video_ = CreateVideo(cluster_->tao(), alice_, "v");
    cluster_->sim().RunFor(Seconds(2));
    poster_ = std::make_unique<DeviceAgent>(cluster_.get(), bob_, 0, DeviceProfile::kWifi);
  }

  std::unique_ptr<BladerunnerCluster> cluster_;
  std::unique_ptr<DeviceAgent> poster_;
  UserId alice_ = 0;
  UserId bob_ = 0;
  ObjectId video_ = 0;
};

TEST_F(BaselineTest, ClientPollingDiscoversComments) {
  LvcPollingClient poller(cluster_.get(), alice_, 0, DeviceProfile::kWifi, video_, Seconds(2));
  poller.Start();
  cluster_->sim().RunFor(Seconds(5));

  poster_->PostComment(video_, "hello", "en");
  cluster_->sim().RunFor(Seconds(10));
  poller.Stop();

  EXPECT_EQ(poller.comments_seen(), 1u);
  EXPECT_GT(poller.polls(), 3u);
  // The vast majority of polls were empty (§1: ~80%+ in production).
  EXPECT_GE(poller.empty_polls(), poller.polls() - 2);
}

TEST_F(BaselineTest, PollingLatencyBoundedByInterval) {
  LvcPollingClient poller(cluster_.get(), alice_, 0, DeviceProfile::kWifi, video_, Seconds(4));
  poller.Start();
  cluster_->sim().RunFor(Seconds(5));
  for (int i = 0; i < 10; ++i) {
    poster_->PostComment(video_, "c", "en");
    cluster_->sim().RunFor(Seconds(5));
  }
  poller.Stop();
  const Histogram* latency = cluster_->metrics().FindHistogram("poll.lvc_latency_us");
  ASSERT_NE(latency, nullptr);
  ASSERT_GE(latency->count(), 8u);
  // Mean discovery latency ~ half the interval plus query time.
  EXPECT_GT(latency->Mean(), static_cast<double>(Seconds(1)));
  EXPECT_LT(latency->Mean(), static_cast<double>(Seconds(6)));
}

TEST_F(BaselineTest, PollingCausesRangeReadsPerPoll) {
  int64_t before = cluster_->metrics().GetCounter("tao.range_reads").value();
  LvcPollingClient poller(cluster_.get(), alice_, 0, DeviceProfile::kWifi, video_, Seconds(1));
  poller.Start();
  cluster_->sim().RunFor(Seconds(20));
  poller.Stop();
  int64_t range_reads = cluster_->metrics().GetCounter("tao.range_reads").value() - before;
  EXPECT_GE(range_reads, 15);  // one per poll
}

TEST_F(BaselineTest, ServerPollAgentPushesWithLowerClientOverhead) {
  LvcServerPollAgent agent(cluster_.get(), alice_, 0, DeviceProfile::kWifi, video_, Seconds(2));
  agent.Start();
  cluster_->sim().RunFor(Seconds(5));
  poster_->PostComment(video_, "hi", "en");
  cluster_->sim().RunFor(Seconds(10));
  agent.Stop();
  EXPECT_EQ(agent.comments_pushed(), 1u);
  EXPECT_GT(agent.polls(), 3u);
  // Server-side polling still hammers the backend with empty polls.
  EXPECT_GE(agent.empty_polls(), agent.polls() - 2);
}

TEST_F(BaselineTest, TriggerClientPollsOnlyWhenNotified) {
  LvcTriggerClient trigger(cluster_.get(), alice_, 0, DeviceProfile::kWifi, video_,
                           /*notifier_host_id=*/90001);
  trigger.Start();
  cluster_->sim().RunFor(Seconds(5));
  EXPECT_EQ(trigger.polls(), 0u);  // no update, no poll — that's the point

  poster_->PostComment(video_, "hi", "en");
  cluster_->sim().RunFor(Seconds(10));
  EXPECT_GE(trigger.notifications(), 1u);
  EXPECT_GE(trigger.polls(), 1u);
  EXPECT_EQ(trigger.comments_seen(), 1u);
  trigger.Stop();
}

TEST_F(BaselineTest, PushBeatsPollingOnBackendQueryCost) {
  // Same workload twice: polling fleet vs Bladerunner streams. Compare
  // TAO range reads (the §5 "pressure on the graph index").
  auto run_workload = [this](bool use_polling) -> int64_t {
    ClusterConfig config;
    config.seed = 505;
    BladerunnerCluster cluster(config, Topology::OneRegion());
    UserId poster_user = CreateUser(cluster.tao(), "p", "en");
    ObjectId video = CreateVideo(cluster.tao(), poster_user, "v");
    std::vector<UserId> viewers;
    for (int i = 0; i < 10; ++i) {
      viewers.push_back(CreateUser(cluster.tao(), "w" + std::to_string(i), "en"));
    }
    cluster.sim().RunFor(Seconds(2));

    std::vector<std::unique_ptr<LvcPollingClient>> pollers;
    std::vector<std::unique_ptr<DeviceAgent>> devices;
    for (UserId viewer : viewers) {
      if (use_polling) {
        pollers.push_back(std::make_unique<LvcPollingClient>(&cluster, viewer, 0,
                                                             DeviceProfile::kWifi, video,
                                                             Seconds(2)));
        pollers.back()->Start();
      } else {
        devices.push_back(
            std::make_unique<DeviceAgent>(&cluster, viewer, 0, DeviceProfile::kWifi));
        devices.back()->SubscribeLvc(video);
      }
    }
    DeviceAgent poster(&cluster, poster_user, 0, DeviceProfile::kWifi);
    cluster.sim().RunFor(Seconds(5));
    int64_t before = cluster.metrics().GetCounter("tao.range_reads").value();
    for (int i = 0; i < 5; ++i) {
      poster.PostComment(video, "c", "en");
      cluster.sim().RunFor(Seconds(12));
    }
    return cluster.metrics().GetCounter("tao.range_reads").value() - before;
  };

  int64_t polling_range_reads = run_workload(true);
  int64_t bladerunner_range_reads = run_workload(false);
  // 10 pollers x every 2s x 60s = ~300 range reads; Bladerunner: ~0.
  EXPECT_GT(polling_range_reads, 200);
  EXPECT_LE(bladerunner_range_reads, 5);
}

}  // namespace
}  // namespace bladerunner
