// Unit tests for the simulation kernel: event ordering, cancellation,
// deterministic RNG distributions, histograms, metrics, time helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/sim/histogram.h"
#include "src/sim/lp.h"
#include "src/sim/metrics.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace bladerunner {
namespace {

TEST(TimeTest, UnitConstructors) {
  EXPECT_EQ(Micros(7), 7);
  EXPECT_EQ(Millis(3), 3000);
  EXPECT_EQ(Seconds(2), 2000000);
  EXPECT_EQ(Minutes(1), 60000000);
  EXPECT_EQ(Hours(1), Minutes(60));
  EXPECT_EQ(Days(1), Hours(24));
}

TEST(TimeTest, FractionalConstructors) {
  EXPECT_EQ(MillisF(1.5), 1500);
  EXPECT_EQ(SecondsF(0.25), 250000);
}

TEST(TimeTest, Conversions) {
  EXPECT_DOUBLE_EQ(ToMillis(Millis(5)), 5.0);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(9)), 9.0);
  EXPECT_DOUBLE_EQ(ToMinutes(Minutes(4)), 4.0);
  EXPECT_DOUBLE_EQ(ToHours(Hours(3)), 3.0);
}

TEST(TimeTest, FormatTimeOfDay) {
  EXPECT_EQ(FormatTimeOfDay(0), "00:00:00");
  EXPECT_EQ(FormatTimeOfDay(Hours(1) + Minutes(30) + Seconds(15)), "01:30:15");
  EXPECT_EQ(FormatTimeOfDay(Days(2) + Hours(23)), "23:00:00");
}

TEST(TimeTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(Micros(500)), "500us");
  EXPECT_EQ(FormatDuration(Millis(2)), "2.00ms");
  EXPECT_EQ(FormatDuration(Seconds(3)), "3.00s");
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Millis(30), [&]() { order.push_back(3); });
  sim.Schedule(Millis(10), [&]() { order.push_back(1); });
  sim.Schedule(Millis(20), [&]() { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Millis(30));
}

TEST(SimulatorTest, SameTimeEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(Millis(5), [&order, i]() { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Millis(1), [&]() {
    sim.Schedule(Millis(1), [&]() {
      fired += 1;
      sim.Schedule(Millis(1), [&]() { fired += 1; });
    });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), Millis(3));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  TimerId id = sim.Schedule(Millis(10), [&]() { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelAfterFireReturnsFalse) {
  Simulator sim;
  TimerId id = sim.Schedule(Millis(1), []() {});
  sim.Run();
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, DoubleCancelReturnsFalse) {
  Simulator sim;
  TimerId id = sim.Schedule(Millis(1), []() {});
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Millis(10), [&]() { fired += 1; });
  sim.Schedule(Millis(30), [&]() { fired += 1; });
  sim.RunUntil(Millis(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), Millis(20));
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunUntilAdvancesClockWhenQueueDrains) {
  Simulator sim;
  sim.RunUntil(Seconds(5));
  EXPECT_EQ(sim.Now(), Seconds(5));
}

TEST(SimulatorTest, RunForIsRelative) {
  Simulator sim;
  sim.RunFor(Seconds(1));
  sim.RunFor(Seconds(1));
  EXPECT_EQ(sim.Now(), Seconds(2));
}

TEST(SimulatorTest, RunUntilWithCancelledHead) {
  Simulator sim;
  bool late_fired = false;
  TimerId early = sim.Schedule(Millis(1), []() {});
  sim.Schedule(Millis(100), [&]() { late_fired = true; });
  sim.Cancel(early);
  sim.RunUntil(Millis(10));
  EXPECT_FALSE(late_fired);  // the cancelled head must not pull in later events
  EXPECT_EQ(sim.Now(), Millis(10));
}

TEST(SimulatorTest, PendingEventsTracksLiveEvents) {
  Simulator sim;
  TimerId a = sim.Schedule(Millis(1), []() {});
  sim.Schedule(Millis(2), []() {});
  EXPECT_EQ(sim.PendingEvents(), 2u);
  sim.Cancel(a);
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.Run();
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.RunUntil(Seconds(1));
  SimTime fired_at = -1;
  sim.Schedule(-Millis(100), [&]() { fired_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(fired_at, Seconds(1));
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Simulator sim(seed);
    double total = 0.0;
    for (int i = 0; i < 100; ++i) {
      sim.Schedule(MillisF(sim.rng().Exponential(5.0)), [&total, &sim]() {
        total += static_cast<double>(sim.Now());
      });
    }
    sim.Run();
    return total;
  };
  EXPECT_DOUBLE_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

// ---- kernel contract pins (safety net for the heap rewrite) ----

// RunUntil always advances Now() to the deadline — both when later events
// remain pending and when the queue drained long before the deadline.
TEST(SimulatorTest, RunUntilAlwaysAdvancesToDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Millis(1), [&]() { fired += 1; });
  sim.Schedule(Seconds(10), [&]() { fired += 1; });
  sim.RunUntil(Seconds(1));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), Seconds(1));  // later event pending: still advances
  sim.RunUntil(Seconds(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), Seconds(20));  // queue drained at 10s: still advances
}

// A fired timer's id must stay dead even after the kernel recycles its
// internal bookkeeping for new events: cancelling it is a no-op that must
// not touch any newer timer.
TEST(SimulatorTest, CancelOfFiredTimerNeverHitsRecycledId) {
  Simulator sim;
  TimerId old_id = sim.Schedule(Millis(1), []() {});
  sim.Run();
  // These may reuse the fired timer's internal storage.
  bool fired = false;
  sim.Schedule(Millis(1), [&]() { fired = true; });
  EXPECT_FALSE(sim.Cancel(old_id));
  sim.Run();
  EXPECT_TRUE(fired);  // the stale cancel must not kill the new timer
}

TEST(SimulatorTest, CancelOwnTimerInsideCallbackReturnsFalse) {
  Simulator sim;
  TimerId id = kInvalidTimerId;
  bool cancel_result = true;
  id = sim.Schedule(Millis(1), [&]() { cancel_result = sim.Cancel(id); });
  sim.Run();
  EXPECT_FALSE(cancel_result);  // a firing timer is no longer pending
}

TEST(SimulatorTest, CancelFromEarlierEventPreventsLaterSameTimeEvent) {
  Simulator sim;
  bool late_fired = false;
  TimerId late = kInvalidTimerId;
  // FIFO within an instant: the canceller was scheduled first, so it runs
  // first and must be able to cancel the same-time event behind it.
  sim.Schedule(Millis(5), [&]() { EXPECT_TRUE(sim.Cancel(late)); });
  late = sim.Schedule(Millis(5), [&]() { late_fired = true; });
  sim.Run();
  EXPECT_FALSE(late_fired);
}

// Same-time FIFO survives interleaved cancellation: the surviving events
// still run in their original scheduling order.
TEST(SimulatorTest, SameTimeFifoSurvivesInterleavedCancels) {
  Simulator sim;
  std::vector<int> order;
  std::vector<TimerId> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(sim.Schedule(Millis(7), [&order, i]() { order.push_back(i); }));
  }
  for (int i = 0; i < 20; i += 3) {
    EXPECT_TRUE(sim.Cancel(ids[static_cast<size_t>(i)]));
  }
  sim.Run();
  std::vector<int> expected;
  for (int i = 0; i < 20; ++i) {
    if (i % 3 != 0) {
      expected.push_back(i);
    }
  }
  EXPECT_EQ(order, expected);
}

// Randomized pop-order check: whatever the internal heap shape, events must
// fire in strict (time, scheduling-seq) order.
TEST(SimulatorTest, StressPopOrderIsTimeThenFifo) {
  Simulator sim;
  Rng rng(42);
  struct Fired {
    SimTime at;
    int seq;
  };
  std::vector<Fired> fired;
  std::vector<TimerId> ids;
  for (int i = 0; i < 2000; ++i) {
    SimTime at = Micros(rng.UniformInt(0, 50));  // heavy same-time collisions
    ids.push_back(sim.ScheduleAt(at, [&fired, &sim, i]() {
      fired.push_back({sim.Now(), i});
    }));
  }
  for (int i = 0; i < 2000; i += 7) {
    sim.Cancel(ids[static_cast<size_t>(i)]);
  }
  sim.Run();
  ASSERT_FALSE(fired.empty());
  for (size_t i = 1; i < fired.size(); ++i) {
    ASSERT_GE(fired[i].at, fired[i - 1].at);
    if (fired[i].at == fired[i - 1].at) {
      ASSERT_GT(fired[i].seq, fired[i - 1].seq);  // FIFO within an instant
    }
  }
}

// ---- partitioned kernel: LPs, lookahead channels, determinism ----

TEST(PartitionedSimTest, SingleLpMatchesSequentialExactly) {
  // The same program on the sequential kernel and on a partitioned kernel
  // with only the global LP must produce the identical execution log.
  auto run = [](bool partitioned) {
    Simulator sim(7);
    if (partitioned) {
      SimParallelOptions po;
      po.threads = 1;
      po.num_lps = 1;
      sim.ConfigureParallel(po);
    }
    std::vector<std::pair<SimTime, int>> log;
    Rng rng(99);
    for (int i = 0; i < 200; ++i) {
      sim.Schedule(Micros(rng.UniformInt(0, 3000)),
                   [&log, &sim, i]() { log.push_back({sim.Now(), i}); });
    }
    sim.RunFor(Millis(10));
    return log;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(PartitionedSimTest, CrossLpSendRespectsLookaheadFloor) {
  Simulator sim(1);
  SimParallelOptions po;
  po.threads = 1;
  po.num_lps = 3;
  po.lookahead = Millis(5);
  sim.ConfigureParallel(po);
  SimTime delivered_at = 0;
  TimerId cross_id = kInvalidTimerId;
  bool cross_ran = false;
  sim.Schedule(LpId(1), Millis(1), [&]() {
    // A cross-LP send below the lookahead floor: must be clamped up to
    // sender-now + lookahead and must not hand back a cancelable id.
    cross_id = sim.Schedule(LpId(2), Millis(1), [&]() {
      cross_ran = true;
      delivered_at = sim.Now();
    });
  });
  sim.RunFor(Millis(20));
  EXPECT_TRUE(cross_ran);
  EXPECT_EQ(cross_id, kInvalidTimerId);
  EXPECT_EQ(delivered_at, Millis(1) + Millis(5));  // clamped to the floor
  EXPECT_EQ(sim.lookahead_clamps(), 1u);
  EXPECT_EQ(sim.cross_lp_sends(), 1u);
}

TEST(PartitionedSimTest, CrossLpSendBeyondLookaheadKeepsRequestedTime) {
  Simulator sim(1);
  SimParallelOptions po;
  po.threads = 1;
  po.num_lps = 2;
  po.lookahead = Millis(5);
  sim.ConfigureParallel(po);
  SimTime delivered_at = 0;
  sim.Schedule(LpId(1), Millis(2), [&]() {
    sim.Schedule(LpId(0), Millis(9), [&]() { delivered_at = sim.Now(); });
  });
  sim.RunFor(Millis(30));
  EXPECT_EQ(delivered_at, Millis(2) + Millis(9));  // above the floor: untouched
  EXPECT_EQ(sim.lookahead_clamps(), 0u);
}

TEST(PartitionedSimTest, PerLpRngStreamsAreStableAndIndependent) {
  // Drawing from one LP's rng must not perturb another's sequence, and the
  // per-LP sequences are a function of the seed alone.
  auto draw = [](bool interleave) {
    Simulator sim(21);
    SimParallelOptions po;
    po.threads = 1;
    po.num_lps = 3;
    sim.ConfigureParallel(po);
    std::vector<uint64_t> lp2_draws;
    for (int i = 0; i < 4; ++i) {
      sim.Schedule(LpId(2), Millis(1 + i), [&]() {
        lp2_draws.push_back(sim.rng().UniformInt(0, 1u << 30));
      });
      if (interleave) {
        sim.Schedule(LpId(1), Millis(1 + i), [&]() { sim.rng().Uniform(); });
      }
    }
    sim.RunFor(Millis(50));
    return lp2_draws;
  };
  EXPECT_EQ(draw(false), draw(true));
}

TEST(PartitionedSimTest, RunForIsRelativeInPartitionedMode) {
  Simulator sim(3);
  SimParallelOptions po;
  po.threads = 1;
  po.num_lps = 2;
  sim.ConfigureParallel(po);
  sim.RunFor(Seconds(1));
  sim.RunFor(Seconds(1));
  EXPECT_EQ(sim.Now(), Seconds(2));
}

// A multi-LP workload with self-scheduling timers, cross-LP sends, and
// per-LP rng draws; the digest is the concatenation of per-LP logs in
// LP-id order, which must be invariant across worker-thread counts.
TEST(PartitionedSimTest, DeterministicAcrossThreadCounts) {
  constexpr uint32_t kLps = 9;
  auto run = [](int threads) {
    Simulator sim(4242);
    SimParallelOptions po;
    po.threads = threads;
    po.num_lps = kLps;
    po.lookahead = Millis(5);
    sim.ConfigureParallel(po);
    std::vector<std::vector<uint64_t>> logs(kLps);
    for (uint32_t lp = 0; lp < kLps; ++lp) {
      for (int k = 0; k < 6; ++k) {
        sim.Schedule(LpId(lp), Millis(k), [&sim, &logs, lp]() {
          uint64_t draw = sim.rng().UniformInt(0, 1000000);
          logs[lp].push_back((static_cast<uint64_t>(sim.Now()) << 20) ^ draw);
          // Half the events ping a neighbour LP (cross-LP channel), half
          // reschedule locally below the lookahead.
          uint32_t target = (lp + draw % kLps) % kLps;
          if (draw % 2 == 0 && target != lp) {
            sim.Schedule(LpId(target), Millis(1 + draw % 7), [&logs, target, &sim]() {
              logs[target].push_back(static_cast<uint64_t>(sim.Now()));
            });
          } else if (sim.Now() < Millis(400)) {
            sim.Schedule(LpId(lp), Millis(1 + draw % 3), [&logs, lp, &sim]() {
              logs[lp].push_back(static_cast<uint64_t>(sim.Now()) * 3u);
            });
          }
        });
      }
    }
    sim.RunFor(Seconds(1));
    std::vector<uint64_t> digest;
    digest.push_back(sim.events_executed());
    digest.push_back(sim.cross_lp_sends());
    for (const auto& log : logs) {
      digest.insert(digest.end(), log.begin(), log.end());
    }
    return digest;
  };
  std::vector<uint64_t> base = run(1);
  EXPECT_FALSE(base.empty());
  EXPECT_EQ(base, run(2));
  EXPECT_EQ(base, run(8));
}

TEST(RngTest, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(2);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(3);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(10.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.4);
}

TEST(RngTest, LogNormalMedian) {
  Rng rng(4);
  std::vector<double> samples;
  const int n = 20001;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) {
    samples.push_back(rng.LogNormal(50.0, 0.5));
  }
  std::nth_element(samples.begin(), samples.begin() + n / 2, samples.end());
  EXPECT_NEAR(samples[n / 2], 50.0, 3.0);
}

TEST(RngTest, ParetoIsBoundedBelow) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.Pareto(7.0, 1.2), 7.0);
  }
}

TEST(RngTest, ZipfRanksAreSkewed) {
  Rng rng(6);
  const int64_t n = 100;
  std::vector<int> counts(static_cast<size_t>(n), 0);
  for (int i = 0; i < 50000; ++i) {
    int64_t r = rng.Zipf(n, 1.1);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, n);
    counts[static_cast<size_t>(r)] += 1;
  }
  // Rank 0 must dominate rank 50 heavily.
  EXPECT_GT(counts[0], counts[50] * 10);
}

TEST(RngTest, PoissonMean) {
  Rng rng(7);
  int64_t total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    total += rng.Poisson(4.0);
  }
  EXPECT_NEAR(static_cast<double>(total) / n, 4.0, 0.15);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(8);
  std::vector<double> weights = {0.0, 9.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) {
    size_t idx = rng.WeightedIndex(weights);
    ASSERT_LT(idx, 3u);
    counts[idx] += 1;
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[1], counts[2] * 5);
}

TEST(RngTest, WeightedIndexAllZeroReturnsSize) {
  Rng rng(9);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(rng.WeightedIndex(weights), weights.size());
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng a(10);
  Rng b = a.Fork(1);
  Rng c = a.Fork(1);
  // Different fork points of the same parent differ.
  EXPECT_NE(b.NextU64(), c.NextU64());
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, MeanMinMax) {
  Histogram h;
  h.Record(10.0);
  h.Record(20.0);
  h.Record(30.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
  EXPECT_DOUBLE_EQ(h.min(), 10.0);
  EXPECT_DOUBLE_EQ(h.max(), 30.0);
}

TEST(HistogramTest, QuantileAccuracy) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) {
    h.Record(static_cast<double>(i));
  }
  // Log-bucketed: ~4% relative error is within spec (2 growth steps).
  EXPECT_NEAR(h.Quantile(0.5), 5000.0, 5000.0 * 0.05);
  EXPECT_NEAR(h.Quantile(0.95), 9500.0, 9500.0 * 0.05);
  EXPECT_NEAR(h.Quantile(0.99), 9900.0, 9900.0 * 0.05);
}

TEST(HistogramTest, CdfAt) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.Record(static_cast<double>(i));
  }
  EXPECT_NEAR(h.CdfAt(500.0), 0.5, 0.05);
  EXPECT_DOUBLE_EQ(h.CdfAt(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.CdfAt(2000.0), 1.0);
}

TEST(HistogramTest, Merge) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 100; ++i) {
    a.Record(10.0);
    b.Record(1000.0);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_NEAR(a.Quantile(0.25), 10.0, 2.0);
  EXPECT_NEAR(a.Quantile(0.75), 1000.0, 100.0);
}

TEST(HistogramTest, RecordNAndReset) {
  Histogram h;
  h.RecordN(5.0, 10);
  EXPECT_EQ(h.count(), 10u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
}

// ---- histogram invariants (guard the CdfAt fix and future changes) ----

// Values exactly on a bucket boundary (value == growth^k) belong to the
// bucket below; recording and querying boundary values must agree.
TEST(HistogramTest, BoundaryValuesStayConsistent) {
  Histogram h(2.0);  // buckets (1,2], (2,4], (4,8], ...
  h.Record(2.0);
  h.Record(4.0);
  h.Record(8.0);
  EXPECT_EQ(h.count(), 3u);
  // CDF at each recorded boundary covers exactly the values <= it.
  EXPECT_NEAR(h.CdfAt(2.0), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(h.CdfAt(4.0), 2.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(h.CdfAt(8.0), 1.0);
  // Quantiles stay within the recorded range.
  EXPECT_GE(h.Quantile(0.0), 2.0);
  EXPECT_LE(h.Quantile(1.0), 8.0);
}

TEST(HistogramTest, UnderflowValuesGoToUnderflowBucket) {
  Histogram h;
  h.Record(0.25);
  h.Record(-3.0);
  h.Record(1.0);  // exactly 1.0 is underflow by contract
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
  EXPECT_DOUBLE_EQ(h.max(), 1.0);
  EXPECT_DOUBLE_EQ(h.CdfAt(1.0), 1.0);
  // Quantiles of underflow-only data report min (the best point estimate).
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), -3.0);
}

TEST(HistogramTest, QuantileIsMonotone) {
  Histogram h;
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    h.Record(rng.LogNormal(500.0, 1.2));
  }
  double prev = h.Quantile(0.0);
  for (int i = 1; i <= 100; ++i) {
    double q = h.Quantile(static_cast<double>(i) / 100.0);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

// Merging two histograms must be equivalent to recording all values into
// one histogram (same counts, same quantiles, same CDF).
TEST(HistogramTest, MergeMatchesBulkRecordN) {
  Histogram merged;
  Histogram a;
  Histogram b;
  Histogram bulk;
  Rng rng(12);
  for (int i = 0; i < 400; ++i) {
    double v = rng.LogNormal(80.0, 0.9);
    uint64_t n = static_cast<uint64_t>(rng.UniformInt(1, 4));
    (i % 2 == 0 ? a : b).RecordN(v, n);
    bulk.RecordN(v, n);
  }
  merged.Merge(a);
  merged.Merge(b);
  EXPECT_EQ(merged.count(), bulk.count());
  EXPECT_DOUBLE_EQ(merged.min(), bulk.min());
  EXPECT_DOUBLE_EQ(merged.max(), bulk.max());
  EXPECT_NEAR(merged.sum(), bulk.sum(), 1e-6 * bulk.sum());
  for (double q : {0.01, 0.25, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(merged.Quantile(q), bulk.Quantile(q)) << "q=" << q;
  }
  for (double v : {10.0, 50.0, 80.0, 200.0, 1000.0}) {
    EXPECT_DOUBLE_EQ(merged.CdfAt(v), bulk.CdfAt(v)) << "v=" << v;
  }
}

// CdfAt and Quantile must agree as approximate inverses: CdfAt(Quantile(q))
// stays within one bucket's probability mass of q.
TEST(HistogramTest, CdfQuantileRoundTrip) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) {
    h.Record(static_cast<double>(i));
  }
  for (double q : {0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    double cdf = h.CdfAt(h.Quantile(q));
    EXPECT_NEAR(cdf, q, 0.03) << "q=" << q;
  }
}

// The pre-fix CdfAt counted the whole containing bucket: a value at the
// very bottom of a fat bucket reported the bucket's full mass. Pin the
// pro-rated behavior with a distribution concentrated in one bucket.
TEST(HistogramTest, CdfAtProRatesTheContainingBucket) {
  Histogram h(2.0);  // bucket (4,8] will hold everything
  h.RecordN(5.0, 100);
  h.Record(10.0);  // keeps max_ above the probe so the early-out is not hit
  // Probe just above the bucket's lower bound: only a small fraction of the
  // bucket may be counted (the old code reported ~0.99 here).
  double cdf_low = h.CdfAt(4.1);
  EXPECT_LT(cdf_low, 0.10);
  // Probe near the top of the bucket approaches the full bucket mass.
  double cdf_high = h.CdfAt(7.9);
  EXPECT_GT(cdf_high, 0.90);
  EXPECT_LT(cdf_high, 1.0);
}

// ---- timeseries far-future blowup (satellite bugfix) ----

// One stray far-future timestamp used to resize the dense bucket vector to
// `at / bucket_width` entries — gigabytes for an uninitialized SimTime.
// Sparse overflow storage keeps the footprint proportional to the number of
// buckets written.
TEST(MetricsTest, TimeSeriesFarFutureAddStaysBounded) {
  TimeSeries series(Minutes(15));
  series.Add(Minutes(1), 5.0);
  series.Add(Days(365 * 1000), 7.0);  // would have been ~35M dense buckets
  EXPECT_LE(series.AllocatedBuckets(), 2u);
  size_t far = static_cast<size_t>(Days(365 * 1000) / Minutes(15));
  EXPECT_EQ(series.BucketCount(), far + 1);
  EXPECT_DOUBLE_EQ(series.Sum(0), 5.0);
  EXPECT_DOUBLE_EQ(series.Sum(far), 7.0);
  EXPECT_DOUBLE_EQ(series.Sum(far - 1), 0.0);
}

TEST(MetricsTest, TimeSeriesSparseBucketsSupportSampling) {
  TimeSeries series(Minutes(15));
  SimTime far = Days(40000);
  series.Sample(far, 10.0);
  series.Sample(far + Minutes(1), 30.0);
  size_t i = static_cast<size_t>(far / Minutes(15));
  EXPECT_DOUBLE_EQ(series.Mean(i), 20.0);
  EXPECT_DOUBLE_EQ(series.RatePerMinute(i), 40.0 / 15.0);
  EXPECT_LE(series.AllocatedBuckets(), 1u);
}

TEST(MetricsTest, CounterBasics) {
  MetricsRegistry registry;
  registry.GetCounter("a").Increment();
  registry.GetCounter("a").Increment(4);
  EXPECT_EQ(registry.GetCounter("a").value(), 5);
  EXPECT_EQ(registry.FindCounter("missing"), nullptr);
  ASSERT_NE(registry.FindCounter("a"), nullptr);
}

TEST(MetricsTest, SharedByName) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x");
  Counter& b = registry.GetCounter("x");
  EXPECT_EQ(&a, &b);
}

TEST(MetricsTest, TimeSeriesBucketsAndRates) {
  TimeSeries series(Minutes(15));
  series.Add(Minutes(1), 30.0);
  series.Add(Minutes(14), 30.0);
  series.Add(Minutes(16), 15.0);
  EXPECT_DOUBLE_EQ(series.Sum(0), 60.0);
  EXPECT_DOUBLE_EQ(series.Sum(1), 15.0);
  EXPECT_DOUBLE_EQ(series.RatePerMinute(0), 4.0);
  EXPECT_DOUBLE_EQ(series.RatePerMinute(1), 1.0);
  EXPECT_DOUBLE_EQ(series.Sum(5), 0.0);
}

TEST(MetricsTest, TimeSeriesSampledMean) {
  TimeSeries series(Minutes(15));
  series.Sample(Minutes(0), 10.0);
  series.Sample(Minutes(5), 20.0);
  EXPECT_DOUBLE_EQ(series.Mean(0), 15.0);
  EXPECT_DOUBLE_EQ(series.Mean(3), 0.0);
}

}  // namespace
}  // namespace bladerunner
