// Strict bench-flag parsing (bench/bench_util.h): unrecognized flags,
// missing values, and non-numeric values are hard errors instead of being
// silently ignored — a typo'd `--lp-gruops=8` used to run the sequential
// kernel and "pass" a parallel-kernel check.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_util.h"

namespace bladerunner {
namespace {

struct ParseResult {
  bool ok = false;
  BenchOptions opts;
  std::string error;
};

ParseResult Parse(std::vector<std::string> args) {
  args.insert(args.begin(), "bench_under_test");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& arg : args) argv.push_back(arg.data());
  ParseResult result;
  result.ok = ParseBenchOptionsInto(static_cast<int>(argv.size()), argv.data(), &result.opts,
                                    &result.error);
  return result;
}

TEST(BenchOptionsTest, DefaultsWithNoFlags) {
  ParseResult r = Parse({});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.opts.smoke);
  EXPECT_FALSE(r.opts.perf);
  EXPECT_EQ(r.opts.threads, 1);
  EXPECT_EQ(r.opts.lp_groups, -1);
  EXPECT_DOUBLE_EQ(r.opts.tolerance, 0.25);
}

TEST(BenchOptionsTest, AcceptsBothSpellings) {
  ParseResult r = Parse({"--threads", "4", "--lp-groups=16", "--tolerance=0.5", "--out",
                         "/tmp/x.json", "--check=/tmp/y.json", "--fleet", "2000", "--cell",
                         "a", "--cell=b"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.opts.threads, 4);
  EXPECT_EQ(r.opts.lp_groups, 16);
  EXPECT_DOUBLE_EQ(r.opts.tolerance, 0.5);
  EXPECT_EQ(r.opts.out_path, "/tmp/x.json");
  EXPECT_EQ(r.opts.check_path, "/tmp/y.json");
  EXPECT_EQ(r.opts.fleet, 2000);
  ASSERT_EQ(r.opts.cells.size(), 2u);
  EXPECT_EQ(r.opts.cells[0], "a");
  EXPECT_EQ(r.opts.cells[1], "b");
}

TEST(BenchOptionsTest, SmokeImpliesPerf) {
  ParseResult r = Parse({"--smoke"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.opts.smoke);
  EXPECT_TRUE(r.opts.perf);
}

TEST(BenchOptionsTest, RejectsTypoedFlag) {
  // The motivating bug: this used to silently run the sequential kernel.
  ParseResult r = Parse({"--lp-gruops=8"});
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("--lp-gruops=8"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("unrecognized"), std::string::npos) << r.error;
}

TEST(BenchOptionsTest, RejectsNonIntegerValues) {
  ParseResult r = Parse({"--threads", "four"});
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("integer"), std::string::npos) << r.error;

  r = Parse({"--lp-groups=8x"});
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("integer"), std::string::npos) << r.error;

  r = Parse({"--tolerance=lots"});
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("number"), std::string::npos) << r.error;
}

TEST(BenchOptionsTest, RejectsMissingValue) {
  ParseResult r = Parse({"--threads"});
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("expects a value"), std::string::npos) << r.error;
}

TEST(BenchOptionsTest, RejectsValueOnBoolFlag) {
  ParseResult r = Parse({"--smoke=yes"});
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("takes no value"), std::string::npos) << r.error;
}

TEST(BenchOptionsTest, BenchmarkFlagsPassThrough) {
  // bench_micro forwards argv to google-benchmark; its flags must survive
  // the strict parse untouched.
  ParseResult r = Parse({"--benchmark_filter=Fanout", "--smoke", "--benchmark_list_tests"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.opts.smoke);
}

TEST(BenchOptionsTest, ThreadsClampedToOne) {
  ParseResult r = Parse({"--threads", "0"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.opts.threads, 1);
}

}  // namespace
}  // namespace bladerunner
